//! `sqlnf-obs`: zero-dependency instrumentation for the sqlnf
//! workspace — process-wide counters, log2-histogram timers, scoped
//! spans with a runtime-gated trace, and a JSON-exportable report.
//!
//! # Design
//!
//! Each [`count!`]/[`count_max!`]/[`span!`] call site owns a `static`
//! atomic cell, registered lazily in a global registry on first use.
//! The hot path is therefore one relaxed atomic RMW with no locking,
//! no allocation and no hashing; the registry lock is taken once per
//! call site per process, and again only by [`report`]/[`reset`].
//!
//! Everything is feature-gated: with the `obs` feature disabled (the
//! default) the macros expand to no-ops, the atomics are not compiled,
//! and [`report`] returns an empty [`ObsReport`] — instrumented hot
//! loops pay nothing. The workspace's binary crate enables the
//! feature; benches leave it off.
//!
//! # Example
//!
//! ```
//! fn p_closure_like() {
//!     let _span = sqlnf_obs::span!("doc.closure");
//!     for _ in 0..10 {
//!         sqlnf_obs::count!("doc.closure.iterations");
//!     }
//!     sqlnf_obs::count_max!("doc.closure.widest", 10);
//!     sqlnf_obs::trace!("fixpoint after {} iterations", 10);
//! }
//! p_closure_like();
//! let report = sqlnf_obs::report();
//! #[cfg(feature = "obs")]
//! assert!(report.counter("doc.closure.iterations").unwrap_or(0) >= 10);
//! #[cfg(not(feature = "obs"))]
//! assert!(report.is_empty());
//! ```

#![warn(missing_docs)]

pub mod flight;
pub mod json;
mod report;

pub use flight::{
    flight_enabled, flight_intern, flight_record_id, flight_reset, flight_snapshot, set_flight,
    FlightEvent, FlightKind, RING_SLOTS,
};
pub use report::{CounterSnapshot, ObsReport, TimerSnapshot};

/// Whether instrumentation is compiled in (the `obs` feature). Lets
/// callers distinguish "nothing recorded" from "recording disabled".
#[cfg(feature = "obs")]
pub const ENABLED: bool = true;

/// Whether instrumentation is compiled in (the `obs` feature). Lets
/// callers distinguish "nothing recorded" from "recording disabled".
#[cfg(not(feature = "obs"))]
pub const ENABLED: bool = false;

/// Number of log2 histogram buckets per timer (bucket 31 absorbs
/// everything from ~1 s up). Compiled regardless of the `obs` feature
/// so percentile estimation over snapshots has one API surface.
pub const TIMER_BUCKETS: usize = 32;

#[cfg(feature = "obs")]
mod enabled {
    use crate::TIMER_BUCKETS;
    use crate::{CounterSnapshot, ObsReport, TimerSnapshot};
    use std::cell::Cell;
    use std::fmt;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
    use std::sync::{Mutex, OnceLock};
    use std::time::Instant;

    struct Registry {
        counters: Mutex<Vec<&'static Counter>>,
        timers: Mutex<Vec<&'static Timer>>,
    }

    fn registry() -> &'static Registry {
        static REGISTRY: OnceLock<Registry> = OnceLock::new();
        REGISTRY.get_or_init(|| Registry {
            counters: Mutex::new(Vec::new()),
            timers: Mutex::new(Vec::new()),
        })
    }

    /// How same-named counters from different call sites combine in a
    /// report.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub enum Merge {
        /// Values add up (event counts).
        Sum,
        /// The largest value wins (high-water marks).
        Max,
    }

    /// A named monotonically updated cell. Instantiated per call site
    /// by [`count!`](crate::count!) / [`count_max!`](crate::count_max!);
    /// rarely used directly.
    pub struct Counter {
        name: &'static str,
        value: AtomicU64,
        merge: Merge,
        registered: AtomicBool,
    }

    impl Counter {
        /// A fresh summing counter; `const` so it can back a `static`.
        pub const fn new(name: &'static str) -> Counter {
            Counter {
                name,
                value: AtomicU64::new(0),
                merge: Merge::Sum,
                registered: AtomicBool::new(false),
            }
        }

        /// A fresh high-water-mark counter.
        pub const fn new_max(name: &'static str) -> Counter {
            Counter {
                name,
                value: AtomicU64::new(0),
                merge: Merge::Max,
                registered: AtomicBool::new(false),
            }
        }

        #[inline]
        fn register(&'static self) {
            if !self.registered.swap(true, Relaxed) {
                registry().counters.lock().expect("obs registry").push(self);
            }
        }

        /// Adds `n`.
        #[inline]
        pub fn add(&'static self, n: u64) {
            self.register();
            self.value.fetch_add(n, Relaxed);
        }

        /// Raises the value to at least `n` (high-water marks such as
        /// recursion depth).
        #[inline]
        pub fn raise_to(&'static self, n: u64) {
            self.register();
            self.value.fetch_max(n, Relaxed);
        }
    }

    /// A named histogram timer. Instantiated per call site by
    /// [`span!`](crate::span!); rarely used directly.
    pub struct Timer {
        name: &'static str,
        count: AtomicU64,
        total_ns: AtomicU64,
        max_ns: AtomicU64,
        buckets: [AtomicU64; TIMER_BUCKETS],
        registered: AtomicBool,
        /// Interned flight-recorder name id, resolved on first use.
        flight_id: OnceLock<u32>,
    }

    impl Timer {
        /// A fresh timer; `const` so it can back a `static`.
        pub const fn new(name: &'static str) -> Timer {
            Timer {
                name,
                count: AtomicU64::new(0),
                total_ns: AtomicU64::new(0),
                max_ns: AtomicU64::new(0),
                buckets: [const { AtomicU64::new(0) }; TIMER_BUCKETS],
                registered: AtomicBool::new(false),
                flight_id: OnceLock::new(),
            }
        }

        /// The timer's interned flight-recorder name id (the interning
        /// lock is taken once per timer per process).
        #[inline]
        fn flight_id(&'static self) -> u32 {
            *self
                .flight_id
                .get_or_init(|| crate::flight::flight_intern(self.name))
        }

        /// Records one span of `ns` nanoseconds.
        #[inline]
        pub fn record_ns(&'static self, ns: u64) {
            if !self.registered.swap(true, Relaxed) {
                registry().timers.lock().expect("obs registry").push(self);
            }
            self.count.fetch_add(1, Relaxed);
            self.total_ns.fetch_add(ns, Relaxed);
            self.max_ns.fetch_max(ns, Relaxed);
            let bucket = (64 - ns.leading_zeros() as usize).min(TIMER_BUCKETS - 1);
            self.buckets[bucket].fetch_add(1, Relaxed);
        }
    }

    thread_local! {
        static SPAN_DEPTH: Cell<usize> = const { Cell::new(0) };
    }

    /// Current span nesting depth on this thread (0 outside any span).
    pub fn span_depth() -> usize {
        SPAN_DEPTH.with(Cell::get)
    }

    /// RAII guard created by [`span!`](crate::span!): times the
    /// enclosing scope and tracks nesting depth for trace indentation.
    pub struct SpanGuard {
        timer: &'static Timer,
        start: Instant,
    }

    impl SpanGuard {
        /// Enters a span on `timer`.
        pub fn enter(timer: &'static Timer) -> SpanGuard {
            if trace_enabled() {
                trace_emit(format_args!("-> {}", timer.name));
            }
            if crate::flight::flight_enabled() {
                crate::flight::flight_record_id(timer.flight_id(), crate::FlightKind::Enter, 0);
            }
            SPAN_DEPTH.with(|d| d.set(d.get() + 1));
            SpanGuard {
                timer,
                start: Instant::now(),
            }
        }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            let ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.timer.record_ns(ns);
            SPAN_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            if crate::flight::flight_enabled() {
                crate::flight::flight_record_id(
                    self.timer.flight_id(),
                    crate::FlightKind::Exit,
                    ns,
                );
            }
            if trace_enabled() {
                trace_emit(format_args!("<- {} ({ns}ns)", self.timer.name));
            }
        }
    }

    static TRACE: AtomicBool = AtomicBool::new(false);

    /// Turns the reasoner trace on or off process-wide.
    pub fn set_trace(on: bool) {
        TRACE.store(on, Relaxed);
    }

    /// Whether [`trace!`](crate::trace!) lines are being emitted.
    /// Checked before formatting, so a disabled trace costs one relaxed
    /// load.
    #[inline]
    pub fn trace_enabled() -> bool {
        TRACE.load(Relaxed)
    }

    /// Writes one trace line to stderr, indented by span depth.
    pub fn trace_emit(args: fmt::Arguments<'_>) {
        eprintln!("[obs]{:indent$} {args}", "", indent = span_depth() * 2);
    }

    /// Snapshots every registered counter and timer, sorted by name.
    /// Same-named counters from different call sites (e.g. the same
    /// event counted in two algorithm variants) are merged per their
    /// [`Merge`] rule.
    pub fn report() -> ObsReport {
        let mut merged: std::collections::HashMap<&'static str, u64> =
            std::collections::HashMap::new();
        for c in registry().counters.lock().expect("obs registry").iter() {
            let v = c.value.load(Relaxed);
            let slot = merged.entry(c.name).or_insert(0);
            *slot = match c.merge {
                Merge::Sum => *slot + v,
                Merge::Max => (*slot).max(v),
            };
        }
        let mut counters: Vec<CounterSnapshot> = merged
            .into_iter()
            .map(|(name, value)| CounterSnapshot {
                name: name.to_string(),
                value,
            })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        let mut timers: Vec<TimerSnapshot> = Vec::new();
        for t in registry().timers.lock().expect("obs registry").iter() {
            let snap = TimerSnapshot {
                name: t.name.to_string(),
                count: t.count.load(Relaxed),
                total_ns: t.total_ns.load(Relaxed),
                max_ns: t.max_ns.load(Relaxed),
                buckets: t.buckets.iter().map(|b| b.load(Relaxed)).collect(),
            };
            match timers.iter_mut().find(|s| s.name == snap.name) {
                None => timers.push(snap),
                Some(existing) => {
                    existing.count += snap.count;
                    existing.total_ns += snap.total_ns;
                    existing.max_ns = existing.max_ns.max(snap.max_ns);
                    for (a, b) in existing.buckets.iter_mut().zip(&snap.buckets) {
                        *a += b;
                    }
                }
            }
        }
        timers.sort_by(|a, b| a.name.cmp(&b.name));
        ObsReport { counters, timers }
    }

    /// Zeroes every registered counter and timer (call sites stay
    /// registered). Meant for tests and for repeated measurement runs
    /// within one process.
    pub fn reset() {
        for c in registry().counters.lock().expect("obs registry").iter() {
            c.value.store(0, Relaxed);
        }
        for t in registry().timers.lock().expect("obs registry").iter() {
            t.count.store(0, Relaxed);
            t.total_ns.store(0, Relaxed);
            t.max_ns.store(0, Relaxed);
            for b in &t.buckets {
                b.store(0, Relaxed);
            }
        }
    }
}

#[cfg(feature = "obs")]
pub use enabled::{
    report, reset, set_trace, span_depth, trace_emit, trace_enabled, Counter, SpanGuard, Timer,
};

#[cfg(not(feature = "obs"))]
mod disabled {
    use crate::ObsReport;

    /// No-op without the `obs` feature: always an empty report.
    pub fn report() -> ObsReport {
        ObsReport::default()
    }

    /// No-op without the `obs` feature.
    pub fn reset() {}

    /// No-op without the `obs` feature.
    pub fn set_trace(_on: bool) {}

    /// Always `false` without the `obs` feature.
    #[inline]
    pub fn trace_enabled() -> bool {
        false
    }

    /// Always 0 without the `obs` feature.
    pub fn span_depth() -> usize {
        0
    }
}

#[cfg(not(feature = "obs"))]
pub use disabled::{report, reset, set_trace, span_depth, trace_enabled};

/// Increments a named counter: `count!("core.closure.iterations")`, or
/// by a step: `count!("model.satisfy.pairs", pairs)`.
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! count {
    ($name:expr) => {
        $crate::count!($name, 1u64)
    };
    ($name:expr, $n:expr) => {{
        static __OBS_COUNTER: $crate::Counter = $crate::Counter::new($name);
        __OBS_COUNTER.add($n as u64);
    }};
}

/// No-op: the `obs` feature is disabled.
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! count {
    ($name:expr) => {};
    ($name:expr, $n:expr) => {{
        let _ = $n;
    }};
}

/// Raises a named high-water-mark counter to at least the given value:
/// `count_max!("core.decompose.depth", depth)`.
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! count_max {
    ($name:expr, $n:expr) => {{
        static __OBS_COUNTER: $crate::Counter = $crate::Counter::new_max($name);
        __OBS_COUNTER.raise_to($n as u64);
    }};
}

/// No-op: the `obs` feature is disabled.
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! count_max {
    ($name:expr, $n:expr) => {{
        let _ = $n;
    }};
}

/// Records one value observation into a named log2 histogram (the
/// same machinery as [`span!`] timers, but fed a dimensionless value
/// instead of elapsed nanoseconds): `record!("serve.commit.batch_size",
/// n)`. The report's p50/p99 are bucket upper edges, like any timer.
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! record {
    ($name:expr, $n:expr) => {{
        static __OBS_TIMER: $crate::Timer = $crate::Timer::new($name);
        __OBS_TIMER.record_ns($n as u64);
    }};
}

/// No-op: the `obs` feature is disabled.
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! record {
    ($name:expr, $n:expr) => {{
        let _ = $n;
    }};
}

/// Times the enclosing scope under a named histogram timer. Bind the
/// guard: `let _span = obs::span!("p_closure");` — timing stops when
/// the guard drops.
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static __OBS_TIMER: $crate::Timer = $crate::Timer::new($name);
        $crate::SpanGuard::enter(&__OBS_TIMER)
    }};
}

/// No-op: the `obs` feature is disabled (expands to a unit guard).
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        ()
    };
}

/// Records one point event into the flight recorder:
/// `event!("serve.stmt.admitted")`, or with a payload value:
/// `event!("serve.stmt.admitted", nonce)`. Costs one relaxed load when
/// recording is off ([`set_flight`]); the name is interned once per
/// call site.
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! event {
    ($name:expr) => {
        $crate::event!($name, 0u64)
    };
    ($name:expr, $v:expr) => {{
        if $crate::flight_enabled() {
            static __OBS_EVENT_ID: ::std::sync::OnceLock<u32> = ::std::sync::OnceLock::new();
            let id = *__OBS_EVENT_ID.get_or_init(|| $crate::flight_intern($name));
            $crate::flight_record_id(id, $crate::FlightKind::Instant, $v as u64);
        }
    }};
}

/// No-op: the `obs` feature is disabled.
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! event {
    ($name:expr) => {};
    ($name:expr, $v:expr) => {{
        let _ = $v;
    }};
}

/// Emits one reasoner-trace line (format-args syntax) when tracing is
/// enabled via [`set_trace`]; otherwise costs one relaxed load.
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! trace {
    ($($arg:tt)*) => {
        if $crate::trace_enabled() {
            $crate::trace_emit(::core::format_args!($($arg)*));
        }
    };
}

/// No-op: the `obs` feature is disabled.
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! trace {
    ($($arg:tt)*) => {
        if false {
            let _ = ::core::format_args!($($arg)*);
        }
    };
}
