//! Snapshot types: what [`report`](crate::report) returns, plus JSON
//! and human-readable renderings. These types are compiled regardless
//! of the `obs` feature so downstream code has one API surface.

use crate::json::{parse, JsonError, JsonValue};
use std::fmt::Write as _;

/// One counter at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Dotted counter name, e.g. `core.closure.iterations`.
    pub name: String,
    /// Accumulated value since process start or the last reset.
    pub value: u64,
}

/// One histogram timer at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimerSnapshot {
    /// Span name, e.g. `p_closure`.
    pub name: String,
    /// Number of recorded spans.
    pub count: u64,
    /// Total wall time across spans, in nanoseconds.
    pub total_ns: u64,
    /// Longest single span, in nanoseconds.
    pub max_ns: u64,
    /// Log2 histogram: `buckets[b]` counts spans with
    /// `2^(b-1) <= ns < 2^b` (bucket 0 is sub-nanosecond readings).
    pub buckets: Vec<u64>,
}

impl TimerSnapshot {
    /// Mean span duration in nanoseconds (0 when no spans recorded).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Estimates the `q`-quantile (`0 < q <= 1`) in nanoseconds from
    /// the log2 histogram: the upper edge of the bucket holding the
    /// rank-`⌈q·count⌉` sample, clamped to `max_ns`. The estimate
    /// brackets the true percentile within one bucket width — for a
    /// sample in bucket `b ≥ 1` the true value is in
    /// `[2^(b-1), min(2^b - 1, max_ns)]`, so `true <= estimate <=
    /// 2·true`. The final (overflow) bucket has no upper edge, so its
    /// estimate is `max_ns` exactly. Returns 0 when nothing was
    /// recorded.
    pub fn percentile_ns(&self, q: f64) -> u64 {
        if self.count == 0 || self.buckets.is_empty() {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if b == 0 {
                    0 // sub-nanosecond bucket
                } else if b + 1 == crate::TIMER_BUCKETS {
                    self.max_ns // overflow bucket: no upper edge
                } else {
                    ((1u64 << b) - 1).min(self.max_ns)
                };
            }
        }
        self.max_ns
    }

    /// Median estimate ([`percentile_ns`](Self::percentile_ns) at 0.5).
    pub fn p50_ns(&self) -> u64 {
        self.percentile_ns(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90_ns(&self) -> u64 {
        self.percentile_ns(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99_ns(&self) -> u64 {
        self.percentile_ns(0.99)
    }
}

/// A point-in-time export of every registered counter and timer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObsReport {
    /// Counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// Timers, sorted by name.
    pub timers: Vec<TimerSnapshot>,
}

/// Escapes a Prometheus label value (`\` and `"`; names here are
/// dotted identifiers, so this is belt-and-braces).
fn escape_label(s: &str) -> String {
    if s.contains(['\\', '"']) {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    } else {
        s.to_string()
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

impl ObsReport {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.timers.is_empty()
    }

    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find_map(|c| (c.name == name).then_some(c.value))
    }

    /// Looks up a timer snapshot by name.
    pub fn timer(&self, name: &str) -> Option<&TimerSnapshot> {
        self.timers.iter().find(|t| t.name == name)
    }

    /// Human-readable rendering for `--stats` output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== observability report ==\n");
        if self.is_empty() {
            out.push_str("(nothing recorded)\n");
            return out;
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            let width = self
                .counters
                .iter()
                .map(|c| c.name.len())
                .max()
                .unwrap_or(0);
            for c in &self.counters {
                let _ = writeln!(out, "  {:<width$}  {}", c.name, c.value);
            }
        }
        if !self.timers.is_empty() {
            out.push_str("timers:\n");
            let width = self.timers.iter().map(|t| t.name.len()).max().unwrap_or(0);
            for t in &self.timers {
                let _ = writeln!(
                    out,
                    "  {:<width$}  count={} total={} mean={} max={}",
                    t.name,
                    t.count,
                    fmt_ns(t.total_ns),
                    fmt_ns(t.mean_ns()),
                    fmt_ns(t.max_ns),
                );
            }
        }
        out
    }

    /// Prometheus-style text exposition (the `METRICS` verb's payload
    /// grammar; see DESIGN.md §7). Counters become
    /// `sqlnf_counter{name="…"} v`; each timer becomes the
    /// `sqlnf_span_*` family: `count`, `total_ns`, `max_ns`, the
    /// p50/p90/p99 estimates, and cumulative `sqlnf_span_bucket` lines
    /// with `le` upper edges (only non-empty buckets, then `+Inf`).
    /// Output is deterministic: families in order, series sorted by
    /// name.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        out.push_str("# sqlnf observability exposition (durations in nanoseconds)\n");
        if !self.counters.is_empty() {
            out.push_str("# TYPE sqlnf_counter counter\n");
            for c in &self.counters {
                let _ = writeln!(
                    out,
                    "sqlnf_counter{{name=\"{}\"}} {}",
                    escape_label(&c.name),
                    c.value
                );
            }
        }
        if !self.timers.is_empty() {
            out.push_str("# TYPE sqlnf_span summary\n");
            for t in &self.timers {
                let name = escape_label(&t.name);
                let _ = writeln!(out, "sqlnf_span_count{{name=\"{name}\"}} {}", t.count);
                let _ = writeln!(out, "sqlnf_span_total_ns{{name=\"{name}\"}} {}", t.total_ns);
                let _ = writeln!(out, "sqlnf_span_max_ns{{name=\"{name}\"}} {}", t.max_ns);
                let _ = writeln!(out, "sqlnf_span_p50_ns{{name=\"{name}\"}} {}", t.p50_ns());
                let _ = writeln!(out, "sqlnf_span_p90_ns{{name=\"{name}\"}} {}", t.p90_ns());
                let _ = writeln!(out, "sqlnf_span_p99_ns{{name=\"{name}\"}} {}", t.p99_ns());
                let mut cumulative = 0u64;
                for (b, &c) in t.buckets.iter().enumerate() {
                    if c == 0 {
                        continue;
                    }
                    cumulative += c;
                    let le = if b == 0 {
                        "0".to_string()
                    } else if b + 1 == crate::TIMER_BUCKETS {
                        "+Inf".to_string()
                    } else {
                        ((1u64 << b) - 1).to_string()
                    };
                    let _ = writeln!(
                        out,
                        "sqlnf_span_bucket{{name=\"{name}\",le=\"{le}\"}} {cumulative}"
                    );
                }
                if t.buckets.last().is_none_or(|&c| c == 0)
                    || t.buckets.len() < crate::TIMER_BUCKETS
                {
                    let _ = writeln!(
                        out,
                        "sqlnf_span_bucket{{name=\"{name}\",le=\"+Inf\"}} {cumulative}"
                    );
                }
            }
        }
        out
    }

    /// Compact JSON export, parseable by [`ObsReport::from_json`].
    pub fn to_json(&self) -> String {
        self.to_json_value().to_json()
    }

    /// The report as a [`JsonValue`], for callers that compose it into a
    /// larger document (the CLI's `--stats-json` output does).
    pub fn to_json_value(&self) -> JsonValue {
        let counters = JsonValue::Object(
            self.counters
                .iter()
                .map(|c| (c.name.clone(), JsonValue::Int(c.value as i128)))
                .collect(),
        );
        let timers = JsonValue::Array(
            self.timers
                .iter()
                .map(|t| {
                    JsonValue::Object(vec![
                        ("name".to_string(), JsonValue::Str(t.name.clone())),
                        ("count".to_string(), JsonValue::Int(t.count as i128)),
                        ("total_ns".to_string(), JsonValue::Int(t.total_ns as i128)),
                        ("max_ns".to_string(), JsonValue::Int(t.max_ns as i128)),
                        // Derived estimates; from_json ignores them and
                        // recomputes from the buckets, so the round
                        // trip stays exact.
                        ("p50_ns".to_string(), JsonValue::Int(t.p50_ns() as i128)),
                        ("p90_ns".to_string(), JsonValue::Int(t.p90_ns() as i128)),
                        ("p99_ns".to_string(), JsonValue::Int(t.p99_ns() as i128)),
                        (
                            "buckets".to_string(),
                            JsonValue::Array(
                                t.buckets
                                    .iter()
                                    .map(|&b| JsonValue::Int(b as i128))
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        JsonValue::Object(vec![
            ("counters".to_string(), counters),
            ("timers".to_string(), timers),
        ])
    }

    /// Parses a report previously produced by [`ObsReport::to_json`].
    pub fn from_json(text: &str) -> Result<ObsReport, JsonError> {
        let invalid = |message: &str| JsonError {
            offset: 0,
            message: message.to_string(),
        };
        let doc = parse(text)?;
        let counters = doc
            .get("counters")
            .and_then(JsonValue::as_object)
            .ok_or_else(|| invalid("missing \"counters\" object"))?
            .iter()
            .map(|(name, v)| {
                Ok(CounterSnapshot {
                    name: name.clone(),
                    value: v.as_u64().ok_or_else(|| invalid("counter not a u64"))?,
                })
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        let timers = doc
            .get("timers")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| invalid("missing \"timers\" array"))?
            .iter()
            .map(|t| {
                let field = |key: &str| {
                    t.get(key)
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| invalid("timer field not a u64"))
                };
                Ok(TimerSnapshot {
                    name: t
                        .get("name")
                        .and_then(JsonValue::as_str)
                        .ok_or_else(|| invalid("timer missing \"name\""))?
                        .to_string(),
                    count: field("count")?,
                    total_ns: field("total_ns")?,
                    max_ns: field("max_ns")?,
                    buckets: t
                        .get("buckets")
                        .and_then(JsonValue::as_array)
                        .ok_or_else(|| invalid("timer missing \"buckets\""))?
                        .iter()
                        .map(|b| b.as_u64().ok_or_else(|| invalid("bucket not a u64")))
                        .collect::<Result<Vec<_>, JsonError>>()?,
                })
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        Ok(ObsReport { counters, timers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ObsReport {
        ObsReport {
            counters: vec![
                CounterSnapshot {
                    name: "core.closure.iterations".to_string(),
                    value: 42,
                },
                CounterSnapshot {
                    name: "discovery.mine.levels".to_string(),
                    value: 3,
                },
            ],
            timers: vec![TimerSnapshot {
                name: "p_closure".to_string(),
                count: 7,
                total_ns: 14_000,
                max_ns: 9_000,
                buckets: vec![0, 0, 3, 4],
            }],
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let report = sample();
        let json = report.to_json();
        assert_eq!(ObsReport::from_json(&json).unwrap(), report);
        // And stable under a second pass.
        assert_eq!(ObsReport::from_json(&json).unwrap().to_json(), json);
    }

    #[test]
    fn lookup_and_render() {
        let report = sample();
        assert_eq!(report.counter("discovery.mine.levels"), Some(3));
        assert_eq!(report.counter("nope"), None);
        assert_eq!(report.timer("p_closure").unwrap().mean_ns(), 2_000);
        let text = report.render();
        assert!(text.contains("core.closure.iterations"));
        assert!(text.contains("count=7"));
        assert!(ObsReport::default().render().contains("nothing recorded"));
    }

    #[test]
    fn percentile_estimates_follow_the_buckets() {
        // 10 samples: 4 in bucket 2 (2..=3 ns), 6 in bucket 4 (8..=15).
        let mut buckets = vec![0u64; crate::TIMER_BUCKETS];
        buckets[2] = 4;
        buckets[4] = 6;
        let t = TimerSnapshot {
            name: "t".into(),
            count: 10,
            total_ns: 70,
            max_ns: 14,
            buckets,
        };
        // rank 5 (p50) falls in bucket 4: upper edge 15, clamped to max 14.
        assert_eq!(t.p50_ns(), 14);
        // rank 4 (p40) is the last bucket-2 sample: upper edge 3.
        assert_eq!(t.percentile_ns(0.40), 3);
        assert_eq!(t.p99_ns(), 14);
        // Degenerate shapes.
        let empty = TimerSnapshot {
            name: "e".into(),
            count: 0,
            total_ns: 0,
            max_ns: 0,
            buckets: vec![0; crate::TIMER_BUCKETS],
        };
        assert_eq!(empty.p50_ns(), 0);
        let mut one = vec![0u64; crate::TIMER_BUCKETS];
        one[7] = 1;
        let single = TimerSnapshot {
            name: "s".into(),
            count: 1,
            total_ns: 100,
            max_ns: 100,
            buckets: one,
        };
        for q in [0.01, 0.5, 0.99, 1.0] {
            assert_eq!(single.percentile_ns(q), 100); // min(127, max=100)
        }
        // Overflow bucket has no upper edge: the estimate is max_ns.
        let mut top = vec![0u64; crate::TIMER_BUCKETS];
        top[crate::TIMER_BUCKETS - 1] = 3;
        let over = TimerSnapshot {
            name: "o".into(),
            count: 3,
            total_ns: 0,
            max_ns: 5_000_000_000,
            buckets: top,
        };
        assert_eq!(over.p50_ns(), 5_000_000_000);
    }

    #[test]
    fn prometheus_exposition_is_deterministic_and_complete() {
        let report = sample();
        let text = report.to_prometheus();
        assert!(text.contains("sqlnf_counter{name=\"core.closure.iterations\"} 42"));
        assert!(text.contains("sqlnf_span_count{name=\"p_closure\"} 7"));
        assert!(text.contains("sqlnf_span_p50_ns{name=\"p_closure\"}"));
        // Buckets are cumulative and end with +Inf.
        assert!(text.contains("sqlnf_span_bucket{name=\"p_closure\",le=\"3\"} 3"));
        assert!(text.contains("sqlnf_span_bucket{name=\"p_closure\",le=\"7\"} 7"));
        assert!(text.contains("sqlnf_span_bucket{name=\"p_closure\",le=\"+Inf\"} 7"));
        assert_eq!(text, report.to_prometheus(), "stable under re-render");
        // Label escaping.
        assert_eq!(escape_label("a\"b\\c"), "a\\\"b\\\\c");
    }

    #[test]
    fn from_json_rejects_wrong_shapes() {
        assert!(ObsReport::from_json("[]").is_err());
        assert!(ObsReport::from_json(r#"{"counters":{}}"#).is_err());
        assert!(ObsReport::from_json(r#"{"counters":{"x":-1},"timers":[]}"#).is_err());
    }
}
