//! Snapshot types: what [`report`](crate::report) returns, plus JSON
//! and human-readable renderings. These types are compiled regardless
//! of the `obs` feature so downstream code has one API surface.

use crate::json::{parse, JsonError, JsonValue};
use std::fmt::Write as _;

/// One counter at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Dotted counter name, e.g. `core.closure.iterations`.
    pub name: String,
    /// Accumulated value since process start or the last reset.
    pub value: u64,
}

/// One histogram timer at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimerSnapshot {
    /// Span name, e.g. `p_closure`.
    pub name: String,
    /// Number of recorded spans.
    pub count: u64,
    /// Total wall time across spans, in nanoseconds.
    pub total_ns: u64,
    /// Longest single span, in nanoseconds.
    pub max_ns: u64,
    /// Log2 histogram: `buckets[b]` counts spans with
    /// `2^(b-1) <= ns < 2^b` (bucket 0 is sub-nanosecond readings).
    pub buckets: Vec<u64>,
}

impl TimerSnapshot {
    /// Mean span duration in nanoseconds (0 when no spans recorded).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// A point-in-time export of every registered counter and timer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObsReport {
    /// Counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// Timers, sorted by name.
    pub timers: Vec<TimerSnapshot>,
}

fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

impl ObsReport {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.timers.is_empty()
    }

    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find_map(|c| (c.name == name).then_some(c.value))
    }

    /// Looks up a timer snapshot by name.
    pub fn timer(&self, name: &str) -> Option<&TimerSnapshot> {
        self.timers.iter().find(|t| t.name == name)
    }

    /// Human-readable rendering for `--stats` output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== observability report ==\n");
        if self.is_empty() {
            out.push_str("(nothing recorded)\n");
            return out;
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            let width = self
                .counters
                .iter()
                .map(|c| c.name.len())
                .max()
                .unwrap_or(0);
            for c in &self.counters {
                let _ = writeln!(out, "  {:<width$}  {}", c.name, c.value);
            }
        }
        if !self.timers.is_empty() {
            out.push_str("timers:\n");
            let width = self.timers.iter().map(|t| t.name.len()).max().unwrap_or(0);
            for t in &self.timers {
                let _ = writeln!(
                    out,
                    "  {:<width$}  count={} total={} mean={} max={}",
                    t.name,
                    t.count,
                    fmt_ns(t.total_ns),
                    fmt_ns(t.mean_ns()),
                    fmt_ns(t.max_ns),
                );
            }
        }
        out
    }

    /// Compact JSON export, parseable by [`ObsReport::from_json`].
    pub fn to_json(&self) -> String {
        self.to_json_value().to_json()
    }

    /// The report as a [`JsonValue`], for callers that compose it into a
    /// larger document (the CLI's `--stats-json` output does).
    pub fn to_json_value(&self) -> JsonValue {
        let counters = JsonValue::Object(
            self.counters
                .iter()
                .map(|c| (c.name.clone(), JsonValue::Int(c.value as i128)))
                .collect(),
        );
        let timers = JsonValue::Array(
            self.timers
                .iter()
                .map(|t| {
                    JsonValue::Object(vec![
                        ("name".to_string(), JsonValue::Str(t.name.clone())),
                        ("count".to_string(), JsonValue::Int(t.count as i128)),
                        ("total_ns".to_string(), JsonValue::Int(t.total_ns as i128)),
                        ("max_ns".to_string(), JsonValue::Int(t.max_ns as i128)),
                        (
                            "buckets".to_string(),
                            JsonValue::Array(
                                t.buckets
                                    .iter()
                                    .map(|&b| JsonValue::Int(b as i128))
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        JsonValue::Object(vec![
            ("counters".to_string(), counters),
            ("timers".to_string(), timers),
        ])
    }

    /// Parses a report previously produced by [`ObsReport::to_json`].
    pub fn from_json(text: &str) -> Result<ObsReport, JsonError> {
        let invalid = |message: &str| JsonError {
            offset: 0,
            message: message.to_string(),
        };
        let doc = parse(text)?;
        let counters = doc
            .get("counters")
            .and_then(JsonValue::as_object)
            .ok_or_else(|| invalid("missing \"counters\" object"))?
            .iter()
            .map(|(name, v)| {
                Ok(CounterSnapshot {
                    name: name.clone(),
                    value: v.as_u64().ok_or_else(|| invalid("counter not a u64"))?,
                })
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        let timers = doc
            .get("timers")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| invalid("missing \"timers\" array"))?
            .iter()
            .map(|t| {
                let field = |key: &str| {
                    t.get(key)
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| invalid("timer field not a u64"))
                };
                Ok(TimerSnapshot {
                    name: t
                        .get("name")
                        .and_then(JsonValue::as_str)
                        .ok_or_else(|| invalid("timer missing \"name\""))?
                        .to_string(),
                    count: field("count")?,
                    total_ns: field("total_ns")?,
                    max_ns: field("max_ns")?,
                    buckets: t
                        .get("buckets")
                        .and_then(JsonValue::as_array)
                        .ok_or_else(|| invalid("timer missing \"buckets\""))?
                        .iter()
                        .map(|b| b.as_u64().ok_or_else(|| invalid("bucket not a u64")))
                        .collect::<Result<Vec<_>, JsonError>>()?,
                })
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        Ok(ObsReport { counters, timers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ObsReport {
        ObsReport {
            counters: vec![
                CounterSnapshot {
                    name: "core.closure.iterations".to_string(),
                    value: 42,
                },
                CounterSnapshot {
                    name: "discovery.mine.levels".to_string(),
                    value: 3,
                },
            ],
            timers: vec![TimerSnapshot {
                name: "p_closure".to_string(),
                count: 7,
                total_ns: 14_000,
                max_ns: 9_000,
                buckets: vec![0, 0, 3, 4],
            }],
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let report = sample();
        let json = report.to_json();
        assert_eq!(ObsReport::from_json(&json).unwrap(), report);
        // And stable under a second pass.
        assert_eq!(ObsReport::from_json(&json).unwrap().to_json(), json);
    }

    #[test]
    fn lookup_and_render() {
        let report = sample();
        assert_eq!(report.counter("discovery.mine.levels"), Some(3));
        assert_eq!(report.counter("nope"), None);
        assert_eq!(report.timer("p_closure").unwrap().mean_ns(), 2_000);
        let text = report.render();
        assert!(text.contains("core.closure.iterations"));
        assert!(text.contains("count=7"));
        assert!(ObsReport::default().render().contains("nothing recorded"));
    }

    #[test]
    fn from_json_rejects_wrong_shapes() {
        assert!(ObsReport::from_json("[]").is_err());
        assert!(ObsReport::from_json(r#"{"counters":{}}"#).is_err());
        assert!(ObsReport::from_json(r#"{"counters":{"x":-1},"timers":[]}"#).is_err());
    }
}
