//! Behavioural tests for the instrumentation layer. Counters are
//! process-wide, so the tests that reset or assert absolute values
//! serialize on a lock.

#[cfg(feature = "obs")]
mod with_obs {
    use sqlnf_obs::ObsReport;
    use std::sync::Mutex;

    /// Serializes tests that touch the global registry.
    static LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let _guard = locked();
        sqlnf_obs::reset();
        sqlnf_obs::count!("test.obs.plain");
        sqlnf_obs::count!("test.obs.step", 41);
        sqlnf_obs::count!("test.obs.plain");
        let report = sqlnf_obs::report();
        assert_eq!(report.counter("test.obs.plain"), Some(2));
        assert_eq!(report.counter("test.obs.step"), Some(41));

        sqlnf_obs::reset();
        let report = sqlnf_obs::report();
        assert_eq!(report.counter("test.obs.plain"), Some(0));
        assert_eq!(report.counter("test.obs.step"), Some(0));
    }

    #[test]
    fn count_max_keeps_the_high_water_mark() {
        let _guard = locked();
        sqlnf_obs::reset();
        for depth in [3u64, 9, 5] {
            sqlnf_obs::count_max!("test.obs.depth", depth);
        }
        assert_eq!(sqlnf_obs::report().counter("test.obs.depth"), Some(9));
    }

    #[test]
    fn spans_nest_and_record() {
        let _guard = locked();
        sqlnf_obs::reset();
        assert_eq!(sqlnf_obs::span_depth(), 0);
        {
            let _outer = sqlnf_obs::span!("test.obs.outer");
            assert_eq!(sqlnf_obs::span_depth(), 1);
            {
                let _inner = sqlnf_obs::span!("test.obs.inner");
                assert_eq!(sqlnf_obs::span_depth(), 2);
                std::hint::black_box(());
            }
            assert_eq!(sqlnf_obs::span_depth(), 1);
        }
        assert_eq!(sqlnf_obs::span_depth(), 0);

        let report = sqlnf_obs::report();
        let outer = report.timer("test.obs.outer").expect("outer registered");
        let inner = report.timer("test.obs.inner").expect("inner registered");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert!(outer.total_ns >= inner.total_ns, "outer encloses inner");
        assert_eq!(outer.buckets.iter().sum::<u64>(), 1);
        assert_eq!(outer.buckets.len(), sqlnf_obs::TIMER_BUCKETS);
    }

    #[test]
    fn report_json_round_trips_through_the_real_registry() {
        let _guard = locked();
        sqlnf_obs::reset();
        sqlnf_obs::count!("test.obs.roundtrip", 7);
        {
            let _span = sqlnf_obs::span!("test.obs.roundtrip_span");
        }
        let report = sqlnf_obs::report();
        let parsed = ObsReport::from_json(&report.to_json()).expect("valid JSON");
        assert_eq!(parsed, report);
        assert_eq!(parsed.counter("test.obs.roundtrip"), Some(7));
        assert!(parsed.timer("test.obs.roundtrip_span").is_some());
    }

    #[test]
    fn trace_toggle_is_visible() {
        let _guard = locked();
        assert!(!sqlnf_obs::trace_enabled());
        sqlnf_obs::set_trace(true);
        assert!(sqlnf_obs::trace_enabled());
        sqlnf_obs::trace!("tracing {} from the test", "hello");
        sqlnf_obs::set_trace(false);
        assert!(!sqlnf_obs::trace_enabled());
    }
}

/// With the feature disabled the macros still expand (this module
/// compiling at all is the test) and the API returns inert values.
#[cfg(not(feature = "obs"))]
mod without_obs {
    #[test]
    fn macros_are_noops_and_report_is_empty() {
        sqlnf_obs::count!("test.noop.counter");
        sqlnf_obs::count!("test.noop.step", 5u64);
        sqlnf_obs::count_max!("test.noop.max", 9u64);
        let _span = sqlnf_obs::span!("test.noop.span");
        sqlnf_obs::trace!("never formatted {}", 1);
        sqlnf_obs::set_trace(true);
        assert!(!sqlnf_obs::trace_enabled());
        assert_eq!(sqlnf_obs::span_depth(), 0);
        sqlnf_obs::reset();
        assert!(sqlnf_obs::report().is_empty());
    }
}
