//! Behavioural tests for the instrumentation layer. Counters are
//! process-wide, so the tests that reset or assert absolute values
//! serialize on a lock.

#[cfg(feature = "obs")]
mod with_obs {
    use sqlnf_obs::ObsReport;
    use std::sync::Mutex;

    /// Serializes tests that touch the global registry.
    static LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let _guard = locked();
        sqlnf_obs::reset();
        sqlnf_obs::count!("test.obs.plain");
        sqlnf_obs::count!("test.obs.step", 41);
        sqlnf_obs::count!("test.obs.plain");
        let report = sqlnf_obs::report();
        assert_eq!(report.counter("test.obs.plain"), Some(2));
        assert_eq!(report.counter("test.obs.step"), Some(41));

        sqlnf_obs::reset();
        let report = sqlnf_obs::report();
        assert_eq!(report.counter("test.obs.plain"), Some(0));
        assert_eq!(report.counter("test.obs.step"), Some(0));
    }

    #[test]
    fn count_max_keeps_the_high_water_mark() {
        let _guard = locked();
        sqlnf_obs::reset();
        for depth in [3u64, 9, 5] {
            sqlnf_obs::count_max!("test.obs.depth", depth);
        }
        assert_eq!(sqlnf_obs::report().counter("test.obs.depth"), Some(9));
    }

    #[test]
    fn spans_nest_and_record() {
        let _guard = locked();
        sqlnf_obs::reset();
        assert_eq!(sqlnf_obs::span_depth(), 0);
        {
            let _outer = sqlnf_obs::span!("test.obs.outer");
            assert_eq!(sqlnf_obs::span_depth(), 1);
            {
                let _inner = sqlnf_obs::span!("test.obs.inner");
                assert_eq!(sqlnf_obs::span_depth(), 2);
                std::hint::black_box(());
            }
            assert_eq!(sqlnf_obs::span_depth(), 1);
        }
        assert_eq!(sqlnf_obs::span_depth(), 0);

        let report = sqlnf_obs::report();
        let outer = report.timer("test.obs.outer").expect("outer registered");
        let inner = report.timer("test.obs.inner").expect("inner registered");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert!(outer.total_ns >= inner.total_ns, "outer encloses inner");
        assert_eq!(outer.buckets.iter().sum::<u64>(), 1);
        assert_eq!(outer.buckets.len(), sqlnf_obs::TIMER_BUCKETS);
    }

    #[test]
    fn report_json_round_trips_through_the_real_registry() {
        let _guard = locked();
        sqlnf_obs::reset();
        sqlnf_obs::count!("test.obs.roundtrip", 7);
        {
            let _span = sqlnf_obs::span!("test.obs.roundtrip_span");
        }
        let report = sqlnf_obs::report();
        let parsed = ObsReport::from_json(&report.to_json()).expect("valid JSON");
        assert_eq!(parsed, report);
        assert_eq!(parsed.counter("test.obs.roundtrip"), Some(7));
        assert!(parsed.timer("test.obs.roundtrip_span").is_some());
    }

    #[test]
    fn flight_recorder_captures_spans_and_events_in_order() {
        let _guard = locked();
        sqlnf_obs::flight_reset();
        assert!(!sqlnf_obs::flight_enabled(), "flight is off by default");
        sqlnf_obs::event!("test.flight.off", 1); // dropped while disabled
        sqlnf_obs::set_flight(true);
        {
            let _span = sqlnf_obs::span!("test.flight.span");
            sqlnf_obs::event!("test.flight.mark", 42);
        }
        sqlnf_obs::set_flight(false);
        let events = sqlnf_obs::flight_snapshot(16);
        let tagged: Vec<_> = events.iter().map(|e| (e.name, e.kind)).collect();
        use sqlnf_obs::FlightKind::{Enter, Exit, Instant};
        assert!(tagged.contains(&("test.flight.span", Enter)));
        assert!(tagged.contains(&("test.flight.mark", Instant)));
        assert!(tagged.contains(&("test.flight.span", Exit)));
        assert!(
            !tagged.iter().any(|(n, _)| *n == "test.flight.off"),
            "disabled recorder must drop events"
        );
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted, "snapshot is chronological");
        let mark = events
            .iter()
            .find(|e| e.name == "test.flight.mark")
            .unwrap();
        assert_eq!(mark.value, 42);
        assert_eq!(
            mark.line(),
            format!(
                "{} {} {} instant test.flight.mark 42",
                mark.seq, mark.t_ns, mark.thread
            )
        );
        let exit = events
            .iter()
            .find(|e| e.name == "test.flight.span" && e.kind == Exit)
            .unwrap();
        assert!(exit.value > 0, "exit carries the span duration");
        sqlnf_obs::flight_reset();
        assert!(
            sqlnf_obs::flight_snapshot(usize::MAX).is_empty(),
            "reset raises the floor over everything recorded so far"
        );
    }

    #[test]
    fn flight_ring_keeps_only_the_newest_events() {
        let _guard = locked();
        sqlnf_obs::flight_reset();
        sqlnf_obs::set_flight(true);
        let extra = 50u64;
        for i in 0..(sqlnf_obs::RING_SLOTS as u64 + extra) {
            sqlnf_obs::event!("test.flight.wrap", i);
        }
        sqlnf_obs::set_flight(false);
        let events = sqlnf_obs::flight_snapshot(usize::MAX);
        let wraps: Vec<_> = events
            .iter()
            .filter(|e| e.name == "test.flight.wrap")
            .collect();
        assert!(wraps.len() <= sqlnf_obs::RING_SLOTS);
        assert!(
            wraps
                .iter()
                .any(|e| e.value == sqlnf_obs::RING_SLOTS as u64 + extra - 1),
            "the newest event survives the wrap"
        );
        assert!(
            !wraps.iter().any(|e| e.value == 0),
            "the oldest event was overwritten"
        );
        // `last` truncation keeps the tail of the stream.
        let tail = sqlnf_obs::flight_snapshot(8);
        assert_eq!(tail.len(), 8);
        assert_eq!(
            tail.last().unwrap().value,
            sqlnf_obs::RING_SLOTS as u64 + extra - 1
        );
        sqlnf_obs::flight_reset();
    }

    #[test]
    fn trace_toggle_is_visible() {
        let _guard = locked();
        assert!(!sqlnf_obs::trace_enabled());
        sqlnf_obs::set_trace(true);
        assert!(sqlnf_obs::trace_enabled());
        sqlnf_obs::trace!("tracing {} from the test", "hello");
        sqlnf_obs::set_trace(false);
        assert!(!sqlnf_obs::trace_enabled());
    }
}

/// With the feature disabled the macros still expand (this module
/// compiling at all is the test) and the API returns inert values.
#[cfg(not(feature = "obs"))]
mod without_obs {
    #[test]
    fn macros_are_noops_and_report_is_empty() {
        sqlnf_obs::count!("test.noop.counter");
        sqlnf_obs::count!("test.noop.step", 5u64);
        sqlnf_obs::count_max!("test.noop.max", 9u64);
        let _span = sqlnf_obs::span!("test.noop.span");
        sqlnf_obs::trace!("never formatted {}", 1);
        sqlnf_obs::set_trace(true);
        assert!(!sqlnf_obs::trace_enabled());
        assert_eq!(sqlnf_obs::span_depth(), 0);
        sqlnf_obs::reset();
        assert!(sqlnf_obs::report().is_empty());
    }

    #[test]
    fn flight_recorder_is_inert() {
        sqlnf_obs::set_flight(true);
        assert!(!sqlnf_obs::flight_enabled());
        sqlnf_obs::event!("test.noop.event", 7u64);
        sqlnf_obs::flight_record_id(0, sqlnf_obs::FlightKind::Instant, 1);
        assert!(sqlnf_obs::flight_snapshot(16).is_empty());
        sqlnf_obs::flight_reset();
    }
}

/// Percentile estimation is pure math over a snapshot, compiled in
/// both feature modes, so the property suite runs in both too.
mod percentile_properties {
    use proptest::prelude::*;
    use sqlnf_obs::{TimerSnapshot, TIMER_BUCKETS};

    /// Mirrors the recorder's bucketing: log2 with saturation into the
    /// top (overflow) bucket.
    fn bucket_of(ns: u64) -> usize {
        (64 - ns.leading_zeros() as usize).min(TIMER_BUCKETS - 1)
    }

    fn snapshot_of(samples: &[u64]) -> TimerSnapshot {
        let mut buckets = vec![0u64; TIMER_BUCKETS];
        for &s in samples {
            buckets[bucket_of(s)] += 1;
        }
        TimerSnapshot {
            name: "prop".into(),
            count: samples.len() as u64,
            total_ns: samples.iter().sum(),
            max_ns: samples.iter().copied().max().unwrap_or(0),
            buckets,
        }
    }

    /// The true rank-based percentile: the smallest sample with at
    /// least `ceil(q·n)` samples at or below it.
    fn true_percentile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    proptest! {
        /// For any sample set below the overflow bucket, each estimate
        /// lands in the same log2 bucket as the true percentile: never
        /// below it, never past the bucket's upper edge (within one
        /// bucket width, i.e. under 2x).
        #[test]
        fn estimates_bracket_true_percentiles(
            samples in proptest::collection::vec(0u64..(1 << 30), 1..200),
            q_pct in 1u64..=100,
        ) {
            let q = q_pct as f64 / 100.0;
            let snap = snapshot_of(&samples);
            let mut samples = samples;
            samples.sort_unstable();
            let truth = true_percentile(&samples, q);
            let est = snap.percentile_ns(q);
            prop_assert!(est >= truth, "estimate {est} below true percentile {truth}");
            // The bucket's inclusive upper edge is 2^(b+1) - 1, i.e.
            // strictly under twice the true percentile.
            prop_assert!(
                est < 2 * truth.max(1),
                "estimate {est} beyond one bucket width of {truth}"
            );
        }
    }

    #[test]
    fn degenerate_distributions() {
        // Zero samples: every percentile is 0.
        let empty = snapshot_of(&[]);
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(empty.percentile_ns(q), 0);
        }
        // One sample: every percentile is (an upper bound clamped to)
        // that sample.
        let one = snapshot_of(&[777]);
        for q in [0.01, 0.5, 0.99, 1.0] {
            assert_eq!(one.percentile_ns(q), 777);
        }
        // Adversarial all-one-bucket pile-up: 1000 samples in bucket
        // 10 (512..=1023). The estimate must stay inside the bucket.
        let pile: Vec<u64> = (0..1000).map(|i| 512 + (i % 512)).collect();
        let snap = snapshot_of(&pile);
        for q in [0.5, 0.9, 0.99] {
            let est = snap.percentile_ns(q);
            assert!(
                (512..=1023).contains(&est),
                "estimate {est} escaped the bucket"
            );
        }
    }
}
