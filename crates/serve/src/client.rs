//! A small blocking client for the wire protocol — the test harness
//! and `sqlnf client` both speak through this.
//!
//! Reads carry a timeout (default [`DEFAULT_READ_TIMEOUT`]): a server
//! that dies mid-response — or never picks the session up because its
//! workers were killed — surfaces as a typed [`ClientError`] instead
//! of blocking the caller forever. After a [`ClientError::Timeout`]
//! the connection state is indeterminate (a late reply may still be in
//! flight); callers should drop the client rather than reuse it.

use crate::protocol::{parse_status, read_payload, read_reply, Reply};
use crate::watch::WatchEvent;
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Default read timeout of a [`Client`]; generous enough for the slow
/// verbs (`MINE`, `NORMALIZE`) on any realistic interactive table.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Why a client request failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed outright (connect, write, or a read error
    /// other than timeout/EOF).
    Io(io::Error),
    /// No reply arrived within the read timeout — the server is wedged
    /// or was killed mid-response. Carries the configured timeout when
    /// the client knows it (`None` only for errors converted outside a
    /// client, where no configuration exists).
    Timeout(Option<Duration>),
    /// The server closed the connection before completing the reply.
    ServerClosed,
    /// The reply bytes did not parse as the wire protocol.
    Protocol(String),
    /// [`Client::expect_ok`] received an `ERR` reply; the message is
    /// the server's refusal.
    Refused(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Timeout(Some(t)) => {
                write!(f, "no reply within the read timeout ({t:?})")
            }
            ClientError::Timeout(None) => write!(f, "no reply within the read timeout"),
            ClientError::ServerClosed => write!(f, "server closed the connection"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Refused(m) => write!(f, "server refused: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ClientError::Timeout(None),
            // EOF is the polite close; reset/abort/broken-pipe is how a
            // killed server looks from the other end of the socket.
            io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe => ClientError::ServerClosed,
            io::ErrorKind::InvalidData => ClientError::Protocol(e.to_string()),
            _ => ClientError::Io(e),
        }
    }
}

/// One item off a watched session's event stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamItem {
    /// A discovery fact appeared or was refuted.
    Event(WatchEvent),
    /// The server dropped `n` events because this consumer lagged; the
    /// stream has a gap and a full `MINE` re-baselines it.
    Lagged(u64),
}

/// A connected session.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// The configured read timeout, stamped into [`ClientError::Timeout`].
    timeout: Option<Duration>,
    /// Partial line carried across a read timeout while streaming.
    stream_buf: String,
    /// `true` between an acknowledged `WATCH` and `UNWATCH`: replies
    /// may then be preceded by framed event lines.
    watching: bool,
    /// Events collected while skipping to a reply; consumed by
    /// [`next_event`](Self::next_event).
    queued: VecDeque<StreamItem>,
}

impl Client {
    /// Connects to a running server with the default read timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Client::connect_with_timeout(addr, Some(DEFAULT_READ_TIMEOUT))
    }

    /// Connects with an explicit read timeout (`None` = block forever,
    /// the pre-harness behaviour).
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        timeout: Option<Duration>,
    ) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr).map_err(ClientError::Io)?;
        stream.set_nodelay(true).map_err(ClientError::Io)?;
        stream.set_read_timeout(timeout).map_err(ClientError::Io)?;
        let writer = stream.try_clone().map_err(ClientError::Io)?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            timeout,
            stream_buf: String::new(),
            watching: false,
            queued: VecDeque::new(),
        })
    }

    /// Stamps the configured timeout into a bare [`ClientError::Timeout`].
    fn annotate(&self, e: ClientError) -> ClientError {
        match e {
            ClientError::Timeout(None) => ClientError::Timeout(self.timeout),
            other => other,
        }
    }

    /// Sends one request (a verb line or a complete SQL statement,
    /// possibly spanning lines) and reads its reply.
    pub fn request(&mut self, text: &str) -> Result<Reply, ClientError> {
        self.writer
            .write_all(text.as_bytes())
            .map_err(|e| self.annotate(e.into()))?;
        if !text.ends_with('\n') {
            self.writer
                .write_all(b"\n")
                .map_err(|e| self.annotate(e.into()))?;
        }
        self.writer.flush().map_err(|e| self.annotate(e.into()))?;
        self.read_reply_skipping_events()
    }

    /// Reads the next reply; while watching, framed `EVENT`/`LAGGED`
    /// lines may precede the status line — they are queued for
    /// [`next_event`](Self::next_event), never lost.
    fn read_reply_skipping_events(&mut self) -> Result<Reply, ClientError> {
        if !self.watching {
            return read_reply(&mut self.reader).map_err(|e| self.annotate(e.into()));
        }
        loop {
            let line = self.read_session_line()?;
            if let Some(item) = classify_stream_line(&line) {
                self.queued.push_back(item?);
                continue;
            }
            let (ok, n, message) = parse_status(&line).map_err(|e| self.annotate(e.into()))?;
            let lines = read_payload(&mut self.reader, n).map_err(|e| self.annotate(e.into()))?;
            return Ok(Reply { ok, message, lines });
        }
    }

    /// Reads one complete line, preserving a partial line across
    /// timeouts (the server's idle event flush can race the timeout).
    fn read_session_line(&mut self) -> Result<String, ClientError> {
        match self.reader.read_line(&mut self.stream_buf) {
            Ok(0) => Err(ClientError::ServerClosed),
            Ok(_) if self.stream_buf.ends_with('\n') => {
                let mut line = std::mem::take(&mut self.stream_buf);
                while line.ends_with('\n') || line.ends_with('\r') {
                    line.pop();
                }
                Ok(line)
            }
            // A read that returns data without a newline hit EOF.
            Ok(_) => Err(ClientError::ServerClosed),
            Err(e) => Err(self.annotate(e.into())),
        }
    }

    /// Scrapes the `METRICS` exposition (the payload lines, rejoined).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let reply = self.expect_ok("METRICS")?;
        Ok(reply.lines.join("\n"))
    }

    /// Fetches the last `n` flight-recorder events (`TRACE n`), one
    /// rendered event per line.
    pub fn trace(&mut self, n: usize) -> Result<Vec<String>, ClientError> {
        let reply = self.expect_ok(&format!("TRACE {n}"))?;
        Ok(reply.lines)
    }

    /// Pipelines a batch: writes every statement (each must be one
    /// complete request — a verb line or a full SQL statement) in a
    /// single `write`, *then* reads the replies, one per statement, in
    /// order. The server applies the whole burst before fsyncing, so
    /// the batch typically shares one commit — this is how `bench_serve`
    /// and the harness saturate group commit instead of measuring
    /// round-trip latency. An empty batch returns no replies.
    pub fn send_batch(&mut self, stmts: &[impl AsRef<str>]) -> Result<Vec<Reply>, ClientError> {
        if stmts.is_empty() {
            return Ok(Vec::new());
        }
        let mut out = String::new();
        for stmt in stmts {
            out.push_str(stmt.as_ref());
            if !stmt.as_ref().ends_with('\n') {
                out.push('\n');
            }
        }
        self.writer
            .write_all(out.as_bytes())
            .map_err(|e| self.annotate(e.into()))?;
        self.writer.flush().map_err(|e| self.annotate(e.into()))?;
        let mut replies = Vec::with_capacity(stmts.len());
        for _ in 0..stmts.len() {
            replies.push(self.read_reply_skipping_events()?);
        }
        Ok(replies)
    }

    /// Sends a request and maps an `ERR` reply to
    /// [`ClientError::Refused`].
    pub fn expect_ok(&mut self, text: &str) -> Result<Reply, ClientError> {
        let reply = self.request(text)?;
        if reply.ok {
            Ok(reply)
        } else {
            Err(ClientError::Refused(reply.message))
        }
    }

    /// Runs a multi-statement SQL script, one reply per statement
    /// batch; returns the replies.
    pub fn run_script(&mut self, script: &str) -> Result<Vec<Reply>, ClientError> {
        // Split on statement boundaries client-side so each statement
        // earns its own reply (the server replies once per completed
        // accumulator unit).
        let mut replies = Vec::new();
        let mut buf = String::new();
        for line in script.lines() {
            buf.push_str(line);
            buf.push('\n');
            if crate::protocol::statement_complete(&buf) {
                replies.push(self.request(&buf)?);
                buf.clear();
            }
        }
        if !buf.trim().is_empty() {
            // An unterminated statement would never earn a reply.
            return Err(ClientError::Protocol(
                "script ends with an unterminated statement".into(),
            ));
        }
        Ok(replies)
    }

    /// Ends the session politely.
    pub fn quit(mut self) -> Result<(), ClientError> {
        let _ = self.request("QUIT")?;
        Ok(())
    }

    /// Subscribes this session to live discovery events (`WATCH`),
    /// optionally restricted to one table. After this, use
    /// [`next_event`](Self::next_event) to pull the stream.
    pub fn watch(&mut self, table: Option<&str>) -> Result<Reply, ClientError> {
        let line = match table {
            Some(t) => format!("WATCH {t}"),
            None => "WATCH".to_owned(),
        };
        self.watch_line(&line)
    }

    /// [`watch`](Self::watch) with the weak plane opted in: the session
    /// additionally receives `wfd:` weak-FD fact events. Sends
    /// `WATCH <t|*> weak` (the wildcard keeps the bare `weak` token
    /// from being read as a table filter).
    pub fn watch_weak(&mut self, table: Option<&str>) -> Result<Reply, ClientError> {
        self.watch_line(&format!("WATCH {} weak", table.unwrap_or("*")))
    }

    fn watch_line(&mut self, line: &str) -> Result<Reply, ClientError> {
        let reply = self.request(line)?;
        if reply.ok {
            self.watching = true;
            Ok(reply)
        } else {
            Err(ClientError::Refused(reply.message))
        }
    }

    /// Waits for the next streamed item. `Ok(None)` means the read
    /// timed out with no event — the stream is idle, not broken.
    pub fn next_event(&mut self) -> Result<Option<StreamItem>, ClientError> {
        if let Some(item) = self.queued.pop_front() {
            return Ok(Some(item));
        }
        if !self.watching {
            return Err(ClientError::Protocol("session is not watching".into()));
        }
        match self.read_session_line() {
            Ok(line) => match classify_stream_line(&line) {
                Some(item) => item.map(Some),
                None => Err(ClientError::Protocol(format!(
                    "unexpected line while watching: {line:?}"
                ))),
            },
            Err(ClientError::Timeout(_)) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Cancels the subscription (`UNWATCH`). The server drains queued
    /// events before confirming; they are returned along with any
    /// events collected earlier, in stream order.
    pub fn unwatch(&mut self) -> Result<(Vec<StreamItem>, Reply), ClientError> {
        let reply = self.request("UNWATCH")?;
        self.watching = false;
        let items: Vec<StreamItem> = self.queued.drain(..).collect();
        if reply.ok {
            Ok((items, reply))
        } else {
            Err(ClientError::Refused(reply.message))
        }
    }
}

/// Classifies a framed stream line; `None` means the line is not an
/// event frame (likely a reply status line).
fn classify_stream_line(line: &str) -> Option<Result<StreamItem, ClientError>> {
    if line.starts_with("EVENT ") {
        Some(match WatchEvent::parse(line) {
            Some(ev) => Ok(StreamItem::Event(ev)),
            None => Err(ClientError::Protocol(format!("bad event line {line:?}"))),
        })
    } else {
        line.strip_prefix("LAGGED ").map(|n| match n.parse() {
            Ok(n) => Ok(StreamItem::Lagged(n)),
            Err(_) => Err(ClientError::Protocol(format!("bad lag line {line:?}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// The harness-critical fix: a server that accepts the connection
    /// but never replies (killed mid-response, wedged worker) must
    /// surface as a typed `Timeout`, not block the caller forever.
    #[test]
    fn read_times_out_instead_of_blocking() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // Accept and hold the socket open without ever writing.
        let hold = std::thread::spawn(move || listener.accept().map(|(s, _)| s));
        let mut client =
            Client::connect_with_timeout(addr, Some(Duration::from_millis(50))).unwrap();
        let err = client.request("PING").unwrap_err();
        assert!(
            matches!(err, ClientError::Timeout(Some(t)) if t == Duration::from_millis(50)),
            "{err}"
        );
        // The display names the configured timeout, so a stuck harness
        // log says how long the client actually waited.
        assert!(err.to_string().contains("50ms"), "{err}");
        drop(client);
        let _ = hold.join().unwrap();
    }

    /// A server that closes mid-reply reads as `ServerClosed`.
    #[test]
    fn server_death_is_a_typed_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let half_reply = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            // A status line announcing payload that never comes.
            io::Write::write_all(&mut s, b"OK 3 partial\nline1\n").unwrap();
            // Socket drops here: connection closed mid-payload.
        });
        let mut client = Client::connect_with_timeout(addr, Some(Duration::from_secs(5))).unwrap();
        let err = client.request("PING").unwrap_err();
        assert!(matches!(err, ClientError::ServerClosed), "{err}");
        half_reply.join().unwrap();
    }

    /// Refusals keep their message through `expect_ok`.
    #[test]
    fn expect_ok_maps_err_replies() {
        let server = crate::Server::start(crate::ServeConfig::default()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let err = client.expect_ok("DUMP nope").unwrap_err();
        match err {
            ClientError::Refused(m) => assert!(m.contains("no such table"), "{m}"),
            other => panic!("expected Refused, got {other}"),
        }
        client.quit().unwrap();
        server.shutdown().unwrap();
    }
}
