//! A small blocking client for the wire protocol — the test harness
//! and `sqlnf client` both speak through this.

use crate::protocol::{read_reply, Reply};
use std::io::{self, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A connected session.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request (a verb line or a complete SQL statement,
    /// possibly spanning lines) and reads its reply.
    pub fn request(&mut self, text: &str) -> io::Result<Reply> {
        self.writer.write_all(text.as_bytes())?;
        if !text.ends_with('\n') {
            self.writer.write_all(b"\n")?;
        }
        self.writer.flush()?;
        read_reply(&mut self.reader)
    }

    /// Sends a request and maps an `ERR` reply to an `io::Error`.
    pub fn expect_ok(&mut self, text: &str) -> io::Result<Reply> {
        let reply = self.request(text)?;
        if reply.ok {
            Ok(reply)
        } else {
            Err(io::Error::other(format!(
                "server refused: {}",
                reply.message
            )))
        }
    }

    /// Runs a multi-statement SQL script, one reply per statement
    /// batch; returns the replies.
    pub fn run_script(&mut self, script: &str) -> io::Result<Vec<Reply>> {
        // Split on statement boundaries client-side so each statement
        // earns its own reply (the server replies once per completed
        // accumulator unit).
        let mut replies = Vec::new();
        let mut buf = String::new();
        for line in script.lines() {
            buf.push_str(line);
            buf.push('\n');
            if crate::protocol::statement_complete(&buf) {
                replies.push(self.request(&buf)?);
                buf.clear();
            }
        }
        if !buf.trim().is_empty() {
            // An unterminated statement would never earn a reply.
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "script ends with an unterminated statement",
            ));
        }
        Ok(replies)
    }

    /// Ends the session politely.
    pub fn quit(mut self) -> io::Result<()> {
        let _ = self.request("QUIT")?;
        Ok(())
    }
}
