//! Group commit over the sharded WAL.
//!
//! Writers validate and apply a statement under its table lock, then
//! [`enqueue`](GroupWal::enqueue) the canonical rendering — which
//! assigns the frame its global epoch and its position in the shard's
//! commit sequence — release their locks, and park in
//! [`wait`](GroupWal::wait) until the shard's durable sequence covers
//! them. There is no dedicated committer thread: the first waiter to
//! win the shard's file mutex (a `try_lock` election, same shape as
//! the snapshot trigger's compare-exchange) drains the queue, writes
//! every pending frame in one `write`, fsyncs once, advances the
//! durable sequence, and wakes the others. Losers park on a condvar
//! with a short timeout so a stalled committer can never strand them:
//! on every wakeup they re-check durability and re-run the election.
//!
//! One fsync therefore covers every statement that queued while the
//! previous fsync was in flight — the classic group-commit bargain:
//! per-statement latency is bounded below by one fsync, but fsyncs
//! per second no longer bound statements per second.
//!
//! ## The cross-shard watermark
//!
//! Recovery replays the longest *contiguous* epoch run (see
//! [`wal::merge_by_epoch`]): a gap censors every later epoch on every
//! shard. Per-shard durability alone would therefore break the ack
//! contract — shard B could fsync and ack epoch `N+1` while epoch `N`
//! sat unwritten in shard A's queue, and a crash in that window would
//! censor the acked frame. So an ack additionally waits for the
//! **global durable-epoch watermark**: [`wait`](GroupWal::wait)
//! returns `Ok` only once *every* epoch at or below the ticket's own
//! is durable, on whichever shard it lives. Each shard publishes the
//! epoch of its oldest queued-or-in-flight frame
//! (`Shard::oldest_pending`); the watermark holds for epoch `e` when
//! no shard's oldest pending frame is `<= e`. A waiter blocked on a
//! lagging shard *helps*: it runs the committer election on every
//! shard still holding an earlier epoch, so progress never depends on
//! the lagging frame's own writer being scheduled.
//!
//! ## Failure contract
//!
//! A statement is acknowledged only after its frame is durable
//! (`--fsync=batch`: covered by the batch fsync; `--fsync=always`:
//! its own fsync) *and* the watermark covers its epoch. If the batch
//! write or fsync fails, the committer rolls the file back to the
//! batch's start, latches the shard *failed* at the first non-durable
//! sequence, and records the batch's first epoch as the store-wide
//! *failed floor*: the lost epochs make a permanent gap, recovery
//! will censor everything past it, so every waiter whose epoch is at
//! or past the floor — on any shard, durable or not — plus every
//! later enqueue attempt gets an error instead of an ack. The
//! in-memory table state of the failed statements is not rolled back
//! (their locks are long gone); a store that lost a batch is degraded
//! and should be restarted, which replays exactly the durable,
//! ack-consistent prefix.

use crate::metrics::{self, Stage};
use crate::wal::{self, Wal};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, TryLockError};
use std::time::Duration;

/// How long a loser of the committer election parks before re-checking
/// durability and re-running the election.
const PARK: Duration = Duration::from_millis(1);

/// When a statement's frame is forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncMode {
    /// Every frame gets its own fsync before its writer is acked —
    /// the pre-group-commit discipline, kept for comparison and for
    /// the paranoid.
    Always,
    /// One fsync per commit batch (the default): every waiter in the
    /// batch is acked by the same fsync. Identical durability at the
    /// ack boundary; strictly fewer fsyncs.
    #[default]
    Batch,
}

impl std::str::FromStr for FsyncMode {
    type Err = String;
    fn from_str(s: &str) -> Result<FsyncMode, String> {
        match s {
            "always" => Ok(FsyncMode::Always),
            "batch" => Ok(FsyncMode::Batch),
            other => Err(format!("unknown fsync mode {other:?} (always|batch)")),
        }
    }
}

impl std::fmt::Display for FsyncMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FsyncMode::Always => "always",
            FsyncMode::Batch => "batch",
        })
    }
}

/// A claim on durability: the shard, per-shard commit sequence, and
/// global epoch assigned to one enqueued frame. Redeemed by
/// [`GroupWal::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Ticket {
    shard: usize,
    seq: u64,
    epoch: u64,
}

/// Frames admitted but not yet written, plus the sequence counter that
/// names the next one.
#[derive(Debug)]
struct ShardQueue {
    pending: Vec<(u64, String)>,
    next_seq: u64,
    /// First epoch of the batch a committer has drained but not yet
    /// made durable (`None` outside a commit). Keeps
    /// `Shard::oldest_pending` honest while frames are in flight.
    in_flight_front: Option<u64>,
}

/// One log shard: its queue, its file, and its durability horizon.
#[derive(Debug)]
struct Shard {
    /// Tier 5: admitted-but-unwritten frames.
    queue: Mutex<ShardQueue>,
    /// Tier 4: the shard's log file; holding it *is* being the
    /// committer (`None` when the store is ephemeral).
    file: Mutex<Option<Wal>>,
    /// Highest commit sequence known durable.
    durable: AtomicU64,
    /// Lowest commit sequence that failed to commit (`u64::MAX` =
    /// healthy). Latched once, never reset: a shard that lost a batch
    /// refuses all further work.
    failed: AtomicU64,
    /// Epoch of this shard's oldest queued-or-in-flight frame
    /// (`u64::MAX` when the shard is fully durable) — the shard's
    /// contribution to the cross-shard ack watermark. Written only
    /// under the queue mutex; read lock-free by
    /// [`GroupWal::durable_through`].
    oldest_pending: AtomicU64,
    /// Parking lot for election losers.
    gate: Mutex<()>,
    cv: Condvar,
}

impl Shard {
    fn new(file: Option<Wal>) -> Shard {
        Shard {
            queue: Mutex::new(ShardQueue {
                pending: Vec::new(),
                next_seq: 1,
                in_flight_front: None,
            }),
            file: Mutex::new(file),
            durable: AtomicU64::new(0),
            failed: AtomicU64::new(u64::MAX),
            oldest_pending: AtomicU64::new(u64::MAX),
            gate: Mutex::new(()),
            cv: Condvar::new(),
        }
    }
}

/// `fsync_fault` value meaning "no fault armed".
const FAULT_NONE: u64 = u64::MAX;

/// `fsync_fault` value meaning "fail the next batch on any shard".
const FAULT_ANY: u64 = u64::MAX - 1;

/// The store's durability plane: every shard plus the global epoch
/// counter whose values stitch the shards back into one history.
#[derive(Debug)]
pub struct GroupWal {
    shards: Vec<Shard>,
    /// Next epoch to assign (epochs start at 1; assignment happens
    /// under the shard queue lock, itself under the statement's table
    /// lock, so epoch order is consistent with application order).
    epoch: AtomicU64,
    /// How long an elected committer lingers before draining, letting
    /// more writers join its batch (0 = drain immediately).
    window: Duration,
    mode: FsyncMode,
    /// Lowest epoch ever lost to a failed batch (`u64::MAX` =
    /// healthy). Latched, never reset: recovery censors every epoch
    /// past the loss, so no statement at or past it may ever ack.
    failed_floor: AtomicU64,
    /// Test hook: when enabled, every committed frame's
    /// `(epoch, payload)` is recorded here at commit time — the oplog
    /// is exactly the durable history, which is what the harness
    /// diffs recovery against.
    oplog: Mutex<Option<Vec<(u64, String)>>>,
    /// Test hook: shard whose next batch fails between `write` and
    /// `fsync` ([`FAULT_ANY`] = whichever commits first,
    /// [`FAULT_NONE`] = disarmed).
    fsync_fault: AtomicU64,
    /// Commit-time listener (the store's WATCH hub): every batch that
    /// becomes durable on its shard is forwarded as `(epoch, payload)`
    /// frames. Failed batches are never sent, so a listener that
    /// releases epochs contiguously observes exactly the cross-shard
    /// durable watermark.
    listener: Mutex<Option<std::sync::mpsc::Sender<crate::watch::HubMsg>>>,
}

impl GroupWal {
    /// A durability plane with no backing files (ephemeral store):
    /// commit still assigns epochs, advances durable sequences, and
    /// feeds the oplog, it just performs no I/O.
    pub fn ephemeral(shards: usize, window: Duration, mode: FsyncMode) -> GroupWal {
        GroupWal {
            shards: (0..shards.max(1)).map(|_| Shard::new(None)).collect(),
            epoch: AtomicU64::new(1),
            window,
            mode,
            failed_floor: AtomicU64::new(u64::MAX),
            oplog: Mutex::new(None),
            fsync_fault: AtomicU64::new(FAULT_NONE),
            listener: Mutex::new(None),
        }
    }

    /// Opens `generation`'s shard logs inside `dir` and reconstructs
    /// the replayable history: every shard present on disk is read
    /// (regardless of the configured shard count, so restarts may
    /// change `--wal-shards` freely), the frames are merged by epoch,
    /// and the longest contiguous run from `epoch_base` is returned as
    /// the statements to replay. Every shard is then physically
    /// truncated past the run's last epoch — frames beyond a gap were
    /// never acknowledged and must not collide with the resumed epoch
    /// counter.
    pub fn recover(
        dir: &Path,
        generation: u64,
        epoch_base: u64,
        shards: usize,
        window: Duration,
        mode: FsyncMode,
    ) -> io::Result<(GroupWal, Vec<String>)> {
        let shards = shards.max(1);
        let discovered = wal::shard_logs(dir, generation)?;
        let mut per_shard = Vec::with_capacity(discovered.len());
        for (_, path) in &discovered {
            per_shard.push(wal::replay(path)?);
        }
        let (run, last) = wal::merge_by_epoch(per_shard, epoch_base);
        // Truncate-and-open the configured shards (creating missing
        // ones), and truncate any extra on-disk shard from a run with
        // a higher --wal-shards.
        let mut files = Vec::with_capacity(shards);
        for s in 0..shards as u64 {
            files.push(Shard::new(Some(Wal::open_capped(
                dir,
                generation,
                s,
                Some(last),
            )?)));
        }
        for (id, _) in &discovered {
            if *id >= shards as u64 {
                drop(Wal::open_capped(dir, generation, *id, Some(last))?);
            }
        }
        let wal = GroupWal {
            shards: files,
            epoch: AtomicU64::new(last.max(epoch_base.saturating_sub(1)) + 1),
            window,
            mode,
            failed_floor: AtomicU64::new(u64::MAX),
            oplog: Mutex::new(None),
            fsync_fault: AtomicU64::new(FAULT_NONE),
            listener: Mutex::new(None),
        };
        Ok((wal, run))
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard `table`'s frames commit on.
    pub(crate) fn shard_for(&self, table: &str) -> usize {
        let mut h = DefaultHasher::new();
        table.hash(&mut h);
        (h.finish() % self.shards.len() as u64) as usize
    }

    /// The epoch the next enqueued frame will carry. Only meaningful
    /// while no writer is active (the snapshotter calls this with
    /// every table lock held).
    pub fn epoch_next(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Install the commit-time listener (the store's WATCH hub). Set
    /// once at store construction, before any writer runs.
    pub(crate) fn set_listener(&self, tx: std::sync::mpsc::Sender<crate::watch::HubMsg>) {
        *self.listener.lock().unwrap() = Some(tx);
    }

    /// Assigns `payload` its epoch and its place in its shard's commit
    /// queue. Must be called while still holding the statement's table
    /// (or registry) write lock, so epoch order agrees with
    /// application order. Fails — without enqueuing — if any shard has
    /// already lost a batch (the new frame's epoch would sit past the
    /// failed floor and could never ack); the caller still holds its
    /// lock and can roll the statement back.
    pub fn enqueue(&self, table: &str, payload: String) -> io::Result<Ticket> {
        let idx = self.shard_for(table);
        let shard = &self.shards[idx];
        if shard.failed.load(Ordering::Acquire) != u64::MAX
            || self.failed_floor.load(Ordering::Acquire) != u64::MAX
        {
            return Err(io::Error::other("WAL shard failed; statement refused"));
        }
        let mut q = {
            let _wait = sqlnf_obs::span!("serve.lock_wait.wal");
            metrics::timed(Stage::LockWal, || shard.queue.lock().unwrap())
        };
        if q.in_flight_front.is_none() && q.pending.is_empty() {
            // Publish a floor *before* drawing the epoch: the drawn
            // value will be >= the counter read here, and every
            // already-assigned epoch is below it, so a concurrent
            // watermark scan can never observe this shard idle while
            // the new frame's epoch is assigned but not yet visible.
            shard
                .oldest_pending
                .store(self.epoch.load(Ordering::SeqCst), Ordering::SeqCst);
        }
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst);
        let seq = q.next_seq;
        q.next_seq += 1;
        q.pending.push((epoch, payload));
        if q.in_flight_front.is_none() && q.pending.len() == 1 {
            shard.oldest_pending.store(epoch, Ordering::SeqCst);
        }
        Ok(Ticket {
            shard: idx,
            seq,
            epoch,
        })
    }

    /// Whether every epoch up to and including `epoch` is durable: no
    /// shard still holds — queued or in flight — a frame at or below
    /// it. This is the ack watermark: recovery replays the contiguous
    /// epoch prefix, so an ack must cover its whole epoch prefix, not
    /// just its own shard's fsync.
    fn durable_through(&self, epoch: u64) -> bool {
        self.shards
            .iter()
            .all(|s| s.oldest_pending.load(Ordering::SeqCst) > epoch)
    }

    /// Parks until the ticket's frame — and every earlier epoch on
    /// every shard — is durable (ack), or until the frame can never
    /// legally ack (error): its own shard failed, or an earlier batch
    /// was lost anywhere, leaving a gap recovery would censor this
    /// frame behind. The caller must hold no locks: the waiter may be
    /// elected committer — of its own shard or of any lagging one —
    /// and perform the batch I/O itself.
    pub fn wait(&self, t: Ticket) -> io::Result<()> {
        let shard = &self.shards[t.shard];
        loop {
            if shard.failed.load(Ordering::Acquire) <= t.seq {
                return Err(io::Error::other(
                    "group commit failed; statement not durable",
                ));
            }
            if self.failed_floor.load(Ordering::Acquire) <= t.epoch {
                return Err(io::Error::other(
                    "an earlier commit batch was lost; statement not durable",
                ));
            }
            if shard.durable.load(Ordering::Acquire) >= t.seq && self.durable_through(t.epoch) {
                return Ok(());
            }
            // Election, with help: run the committer protocol on every
            // shard still holding a frame at or before our epoch (our
            // own included), so the watermark advances even if the
            // lagging frames' writers are not scheduled. Only the own
            // shard lingers — help-commits flush old frames, they
            // should not grow batches.
            let mut helped = false;
            for (i, s) in self.shards.iter().enumerate() {
                if s.oldest_pending.load(Ordering::SeqCst) > t.epoch {
                    continue;
                }
                if let Some(mut file) = try_lock(&s.file) {
                    self.commit_locked(i, &mut file, i == t.shard);
                    helped = true;
                }
            }
            if helped {
                continue;
            }
            // Every election lost: park until a committer wakes us (or
            // the timeout re-runs the election, so a stalled committer
            // — or progress on another shard's condvar — can never
            // strand us).
            let gate = shard.gate.lock().unwrap();
            if (shard.durable.load(Ordering::Acquire) >= t.seq && self.durable_through(t.epoch))
                || shard.failed.load(Ordering::Acquire) <= t.seq
                || self.failed_floor.load(Ordering::Acquire) <= t.epoch
            {
                continue;
            }
            let _ = shard.cv.wait_timeout(gate, PARK).unwrap();
            sqlnf_obs::count!("serve.commit.wakeups");
        }
    }

    /// The committer's critical section: drain the shard's queue and
    /// make the batch durable. Caller holds the shard's file mutex.
    /// `linger` applies the commit window (disabled on the quiescent
    /// snapshot drain path).
    fn commit_locked(&self, idx: usize, file: &mut Option<Wal>, linger: bool) {
        let shard = &self.shards[idx];
        if shard.failed.load(Ordering::Acquire) != u64::MAX {
            // The shard already lost a batch: drain so waiters see
            // `failed` instead of queue growth, but perform no I/O.
            // The dropped frames all sit at or past the failed floor
            // (per-shard epochs are monotone), so retiring them from
            // the watermark cannot release an ack that should block.
            let dropped = {
                let mut q = shard.queue.lock().unwrap();
                q.in_flight_front = None;
                shard.oldest_pending.store(u64::MAX, Ordering::SeqCst);
                std::mem::take(&mut q.pending)
            };
            if !dropped.is_empty() {
                wake(shard);
            }
            return;
        }
        if linger && !self.window.is_zero() {
            // Linger with the file mutex held: later writers can still
            // enqueue (the queue mutex is free) and join this batch.
            std::thread::sleep(self.window);
        }
        let batch = {
            let mut q = shard.queue.lock().unwrap();
            let batch = std::mem::take(&mut q.pending);
            if let Some(&(front, _)) = batch.first() {
                // The frames leave the queue but are not durable yet:
                // keep them visible to the watermark until the fsync
                // lands.
                q.in_flight_front = Some(front);
            }
            batch
        };
        if batch.is_empty() {
            return;
        }
        let n = batch.len() as u64;
        let rollback = file.as_ref().map(|w| (w.bytes(), w.records()));
        let res = match file.as_mut() {
            Some(wal) => self.write_batch(idx, wal, &batch),
            None => Ok(()),
        };
        match res {
            Ok(()) => {
                if let Some(log) = self.oplog.lock().unwrap().as_mut() {
                    log.extend(batch.iter().cloned());
                }
                // Frames are durable on this shard from here on:
                // notify the WATCH hub. The hub's contiguous-epoch
                // release turns per-shard durability into the
                // cross-shard watermark.
                if let Some(tx) = self.listener.lock().unwrap().as_ref() {
                    let _ = tx.send(crate::watch::HubMsg::Batch(batch.clone()));
                }
                shard.durable.fetch_add(n, Ordering::Release);
                {
                    // Retire the batch from the watermark only after
                    // the durable sequence advanced, under the queue
                    // lock so the published epoch can only grow.
                    let mut q = shard.queue.lock().unwrap();
                    q.in_flight_front = None;
                    let next = q.pending.first().map_or(u64::MAX, |&(e, _)| e);
                    shard.oldest_pending.store(next, Ordering::SeqCst);
                }
                sqlnf_obs::count!("serve.commit.batches");
                sqlnf_obs::count!("serve.commit.frames", n);
                sqlnf_obs::record!("serve.commit.batch_size", n);
            }
            Err(_) => {
                // Never acked: erase the batch so recovery cannot
                // replay frames their writers saw fail, latch the
                // shard failed from the first non-durable sequence on,
                // and sink the store-wide floor to the batch's first
                // epoch — the lost epochs are a permanent gap, so
                // nothing at or past them may ever ack, on any shard.
                if let (Some(wal), Some((bytes, records))) = (file.as_mut(), rollback) {
                    let _ = wal.truncate_to(bytes, records);
                }
                let first_bad = shard.durable.load(Ordering::Acquire) + 1;
                shard.failed.store(first_bad, Ordering::Release);
                self.failed_floor.fetch_min(batch[0].0, Ordering::AcqRel);
                let mut q = shard.queue.lock().unwrap();
                q.in_flight_front = None;
                shard.oldest_pending.store(u64::MAX, Ordering::SeqCst);
                drop(q);
            }
        }
        wake(shard);
    }

    /// Writes one drained batch under the configured fsync discipline.
    fn write_batch(&self, idx: usize, wal: &mut Wal, batch: &[(u64, String)]) -> io::Result<()> {
        match self.mode {
            FsyncMode::Batch => {
                {
                    let _span = sqlnf_obs::span!("serve.wal.append");
                    metrics::timed(Stage::WalAppend, || wal.append_batch(batch))?;
                }
                if self.take_fault(idx) {
                    return Err(io::Error::other("injected fsync fault"));
                }
                metrics::timed(Stage::WalFsync, || wal.sync())
            }
            FsyncMode::Always => {
                for frame in batch {
                    {
                        let _span = sqlnf_obs::span!("serve.wal.append");
                        metrics::timed(Stage::WalAppend, || {
                            wal.append_batch(std::slice::from_ref(frame))
                        })?;
                    }
                    if self.take_fault(idx) {
                        return Err(io::Error::other("injected fsync fault"));
                    }
                    metrics::timed(Stage::WalFsync, || wal.sync())?;
                }
                Ok(())
            }
        }
    }

    /// Consumes an armed fsync fault if it targets shard `idx` (or any
    /// shard). Compare-exchange so concurrent committers fire it once.
    fn take_fault(&self, idx: usize) -> bool {
        let armed = self.fsync_fault.load(Ordering::SeqCst);
        if armed == FAULT_ANY || armed == idx as u64 {
            self.fsync_fault
                .compare_exchange(armed, FAULT_NONE, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
        } else {
            false
        }
    }

    /// Locks every shard file in shard order (tier 4; the snapshot
    /// path holds all of them across the generation switch).
    pub fn lock_files(&self) -> Vec<MutexGuard<'_, Option<Wal>>> {
        self.shards.iter().map(|s| s.file.lock().unwrap()).collect()
    }

    /// Drains every shard into its (old-generation) log — used by the
    /// snapshotter, which at this point holds every table lock, so the
    /// queues are quiescent afterwards.
    pub fn drain_all(&self, files: &mut [MutexGuard<'_, Option<Wal>>]) {
        for (i, f) in files.iter_mut().enumerate() {
            self.commit_locked(i, f, false);
        }
    }

    /// Fsyncs every shard file (graceful shutdown path).
    pub fn sync_all(&self) -> io::Result<()> {
        for shard in &self.shards {
            if let Some(wal) = shard.file.lock().unwrap().as_mut() {
                metrics::timed(Stage::WalFsync, || wal.sync())?;
            }
        }
        Ok(())
    }

    /// `(bytes, records)` across all shard logs.
    pub fn size(&self) -> (u64, u64) {
        let mut bytes = 0;
        let mut records = 0;
        for shard in &self.shards {
            if let Some(wal) = shard.file.lock().unwrap().as_ref() {
                bytes += wal.bytes();
                records += wal.records();
            }
        }
        (bytes, records)
    }

    /// Test hook: start recording committed frames.
    pub fn enable_oplog(&self) {
        *self.oplog.lock().unwrap() = Some(Vec::new());
    }

    /// Test hook: the committed history so far, in epoch order. The
    /// per-shard commit order interleaves across shards, so the
    /// recorded frames are sorted by their epochs — the single global
    /// order recovery reproduces.
    pub fn oplog(&self) -> Vec<String> {
        let mut entries = self.oplog.lock().unwrap().clone().unwrap_or_default();
        entries.sort_by_key(|(epoch, _)| *epoch);
        entries.into_iter().map(|(_, payload)| payload).collect()
    }

    /// Test hook: make the next commit batch — on whichever shard
    /// commits first — fail between its `write` and its `fsync`, the
    /// crash window group commit must never ack across.
    pub fn inject_fsync_fault_once(&self) {
        self.fsync_fault.store(FAULT_ANY, Ordering::SeqCst);
    }

    /// Test hook: like [`inject_fsync_fault_once`], but only shard
    /// `shard`'s next batch fails — other shards commit normally, so
    /// tests can build deterministic partial-failure interleavings.
    ///
    /// [`inject_fsync_fault_once`]: GroupWal::inject_fsync_fault_once
    pub fn inject_fsync_fault_on(&self, shard: usize) {
        self.fsync_fault.store(shard as u64, Ordering::SeqCst);
    }
}

/// Wakes a shard's parked waiters (taking the gate briefly first, so a
/// waiter that just checked the horizon but has not parked yet cannot
/// miss the notification).
fn wake(shard: &Shard) {
    drop(shard.gate.lock().unwrap());
    shard.cv.notify_all();
}

/// `try_lock` that treats a poisoned mutex as acquired (the poisoner
/// panicked mid-commit; the shard will latch failed rather than wedge).
fn try_lock<T>(m: &Mutex<T>) -> Option<MutexGuard<'_, T>> {
    match m.try_lock() {
        Ok(g) => Some(g),
        Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
        Err(TryLockError::WouldBlock) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::Arc;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sqlnf_commit_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn enqueue_wait_commits_and_acks() {
        let dir = tmp_dir("ack");
        let (gw, replayed) =
            GroupWal::recover(&dir, 0, 1, 2, Duration::ZERO, FsyncMode::Batch).unwrap();
        assert!(replayed.is_empty());
        gw.enable_oplog();
        let t1 = gw.enqueue("a", "S1".into()).unwrap();
        let t2 = gw.enqueue("b", "S2".into()).unwrap();
        gw.wait(t1).unwrap();
        gw.wait(t2).unwrap();
        assert_eq!(gw.oplog(), vec!["S1".to_owned(), "S2".to_owned()]);
        // Everything written is replayable in epoch order.
        drop(gw);
        let (gw2, replayed) =
            GroupWal::recover(&dir, 0, 1, 2, Duration::ZERO, FsyncMode::Batch).unwrap();
        assert_eq!(replayed, vec!["S1".to_owned(), "S2".to_owned()]);
        assert_eq!(gw2.epoch_next(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn many_writers_share_fsyncs() {
        let dir = tmp_dir("shared");
        let (gw, _) = GroupWal::recover(&dir, 0, 1, 1, Duration::ZERO, FsyncMode::Batch).unwrap();
        let gw = Arc::new(gw);
        let handles: Vec<_> = (0..4)
            .map(|k| {
                let gw = Arc::clone(&gw);
                std::thread::spawn(move || {
                    for i in 0..25 {
                        let t = gw.enqueue("t", format!("S{k}_{i}")).unwrap();
                        gw.wait(t).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(gw.size().1, 100);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_fault_fails_waiters_and_erases_the_batch() {
        let dir = tmp_dir("fault");
        let (gw, _) = GroupWal::recover(&dir, 0, 1, 1, Duration::ZERO, FsyncMode::Batch).unwrap();
        gw.enable_oplog();
        let t_ok = gw.enqueue("t", "GOOD".into()).unwrap();
        gw.wait(t_ok).unwrap();
        gw.inject_fsync_fault_once();
        let t_bad = gw.enqueue("t", "BAD".into()).unwrap();
        assert!(gw.wait(t_bad).is_err(), "undurable waiter must not ack");
        assert_eq!(gw.oplog(), vec!["GOOD".to_owned()]);
        // The failed frame was erased: only the durable prefix replays.
        assert_eq!(gw.size().1, 1);
        // The shard is latched failed: further work is refused upfront.
        assert!(gw.enqueue("t", "LATER".into()).is_err());
        drop(gw);
        let (_, replayed) =
            GroupWal::recover(&dir, 0, 1, 1, Duration::ZERO, FsyncMode::Batch).unwrap();
        assert_eq!(replayed, vec!["GOOD".to_owned()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn always_mode_syncs_each_frame() {
        let dir = tmp_dir("always");
        let (gw, _) = GroupWal::recover(&dir, 0, 1, 1, Duration::ZERO, FsyncMode::Always).unwrap();
        let t1 = gw.enqueue("t", "A".into()).unwrap();
        let t2 = gw.enqueue("t", "B".into()).unwrap();
        gw.wait(t1).unwrap();
        gw.wait(t2).unwrap();
        assert_eq!(gw.size().1, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ephemeral_commits_without_io() {
        let gw = GroupWal::ephemeral(4, Duration::ZERO, FsyncMode::Batch);
        gw.enable_oplog();
        let t = gw.enqueue("t", "S".into()).unwrap();
        gw.wait(t).unwrap();
        assert_eq!(gw.oplog(), vec!["S".to_owned()]);
        assert_eq!(gw.size(), (0, 0));
    }

    /// Two table names that land on different shards of `gw` —
    /// (a shard-0 table, a shard-1 table) for a two-shard plane.
    fn two_tables_on_distinct_shards(gw: &GroupWal) -> (String, String) {
        let mut found: [Option<String>; 2] = [None, None];
        for i in 0.. {
            let name = format!("t{i}");
            let shard = gw.shard_for(&name);
            if found[shard].is_none() {
                found[shard] = Some(name);
                if found.iter().all(|f| f.is_some()) {
                    break;
                }
            }
        }
        (found[0].take().unwrap(), found[1].take().unwrap())
    }

    /// The cross-shard watermark: acking epoch 2 on shard B must first
    /// make epoch 1 on shard A durable, even though A's writer never
    /// calls `wait` — otherwise a crash in the window would censor the
    /// acked frame behind the epoch gap.
    #[test]
    fn ack_waits_for_earlier_epochs_on_other_shards() {
        let dir = tmp_dir("watermark");
        let (gw, _) = GroupWal::recover(&dir, 0, 1, 2, Duration::ZERO, FsyncMode::Batch).unwrap();
        let (on_a, on_b) = two_tables_on_distinct_shards(&gw);
        let _t1 = gw.enqueue(&on_a, "S1".into()).unwrap(); // epoch 1, shard 0
        let t2 = gw.enqueue(&on_b, "S2".into()).unwrap(); // epoch 2, shard 1

        // Only the later epoch's waiter runs; it must help-commit
        // shard 0 before it may ack.
        gw.wait(t2).unwrap();
        let a_frames = wal::replay(&wal::wal_path(&dir, 0, 0)).unwrap();
        assert_eq!(
            a_frames,
            vec![(1, "S1".to_owned())],
            "epoch 1 must be durable on shard 0 before epoch 2 acks"
        );
        // And recovery replays both, in epoch order — no gap.
        drop(gw);
        let (_, replayed) =
            GroupWal::recover(&dir, 0, 1, 2, Duration::ZERO, FsyncMode::Batch).unwrap();
        assert_eq!(replayed, vec!["S1".to_owned(), "S2".to_owned()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A lost batch poisons every later epoch store-wide: waiters past
    /// the failed floor error on *every* shard (their frames sit past
    /// a permanent gap recovery will censor), later enqueues are
    /// refused, and recovery replays exactly the pre-loss prefix.
    #[test]
    fn lost_batch_fails_later_epochs_on_every_shard() {
        let dir = tmp_dir("floor");
        let (gw, _) = GroupWal::recover(&dir, 0, 1, 2, Duration::ZERO, FsyncMode::Batch).unwrap();
        gw.enable_oplog();
        let (on_a, on_b) = two_tables_on_distinct_shards(&gw);
        let t_early = gw.enqueue(&on_a, "EARLY".into()).unwrap(); // epoch 1
        gw.wait(t_early).unwrap();
        let t_lost = gw.enqueue(&on_a, "LOST".into()).unwrap(); // epoch 2, shard 0
        let t_after = gw.enqueue(&on_b, "AFTER".into()).unwrap(); // epoch 3, shard 1
        gw.inject_fsync_fault_on(0);
        assert!(
            gw.wait(t_lost).is_err(),
            "the lost frame's own waiter must not ack"
        );
        // The healthy shard's frame may even be durable on disk, but
        // it sits past the gap: recovery censors it, so it must fail.
        let err = gw.wait(t_after).unwrap_err();
        assert!(err.to_string().contains("not durable"), "{err}");
        // The store refuses new work on every shard.
        assert!(gw.enqueue(&on_a, "MORE".into()).is_err());
        assert!(gw.enqueue(&on_b, "MORE".into()).is_err());
        // The oplog records only what recovery can reproduce.
        assert_eq!(gw.oplog(), vec!["EARLY".to_owned()]);
        drop(gw);
        let (_, replayed) =
            GroupWal::recover(&dir, 0, 1, 2, Duration::ZERO, FsyncMode::Batch).unwrap();
        assert_eq!(replayed, vec!["EARLY".to_owned()]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
