//! # sqlnf-serve
//!
//! A concurrent, constraint-enforcing TCP server over the sqlnf
//! engine — the paper's run-time claim (§1, §7) as a long-lived
//! service: sessions speak the SQL dialect of `sqlnf_model::sql`
//! (`CREATE TABLE` with possible/certain keys and FDs, `INSERT`), and
//! every statement is admitted or refused *locally* through the
//! engine's incremental constraint indexes. Service verbs expose the
//! reasoner and miner over the same connection (`MINE`, `CLOSURE`,
//! `NORMALIZE`), and an append-only WAL with periodic snapshots makes
//! admitted statements durable (see DESIGN.md §8 for the protocol
//! grammar, locking discipline and WAL format).
//!
//! The crate is std-only: `std::net` sockets, `std::thread` workers,
//! no external dependencies.
//!
//! ```no_run
//! use sqlnf_serve::{Client, ServeConfig, Server};
//!
//! let server = Server::start(ServeConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! client
//!     .expect_ok("CREATE TABLE t (a INT NOT NULL, CONSTRAINT k CERTAIN KEY (a));")
//!     .unwrap();
//! client.expect_ok("INSERT INTO t VALUES (1);").unwrap();
//! assert!(!client.request("INSERT INTO t VALUES (1);").unwrap().ok);
//! client.quit().unwrap();
//! server.shutdown().unwrap();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod commit;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod store;
pub mod wal;
pub mod watch;

pub use client::{Client, ClientError, StreamItem};
pub use commit::FsyncMode;
pub use metrics::{parse_exposition, Sample, SlowEntry, Stage};
pub use protocol::{Reply, Request};
pub use server::{ServeConfig, Server};
pub use store::{ServeError, Store, StoreOptions};
pub use wal::Wal;
pub use watch::{
    table_facts, table_facts_with, Subscription, WatchEvent, WatchHub, DEFAULT_WATCH_QUEUE,
    WATCH_MAX_LHS,
};
