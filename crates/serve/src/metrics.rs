//! The METRICS plane: per-request stage accounting, the bounded
//! slow-request log, and the Prometheus-style text exposition (plus
//! its parser, which `sqlnf top` and the tests share).
//!
//! Stage accounting is independent of the `sqlnf-obs` feature: the
//! per-thread accumulator is a handful of `Cell`s and the slow log's
//! fast path is one atomic load, so the request path stays cheap even
//! when full histograms are compiled out.
//!
//! ## Exposition grammar
//!
//! One sample per line, `#` lines are comments:
//!
//! ```text
//! exposition := (comment | sample)*
//! comment    := "#" ... "\n"
//! sample     := name ("{" label ("," label)* "}")? " " value "\n"
//! label      := name "=" '"' escaped-value '"'      # \\ and \" escapes
//! ```
//!
//! Families emitted by [`render_metrics`]:
//!
//! * `sqlnf_counter{name=…}` / `sqlnf_span_*{name=…}` — the
//!   `sqlnf-obs` registry (empty when the feature is off);
//! * `sqlnf_store{name=…}` — the same counters `STATS` reports, same
//!   names, so the two planes can be diffed against each other;
//! * `sqlnf_slow_request_ns{rank=…,seq=…,verb=…,stage=…}` — the
//!   worst-requests log, one `total` sample plus one per non-zero
//!   stage.

use crate::store::Store;
use std::cell::Cell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::Instant;

/// How many worst requests the slow log retains.
pub const SLOW_LOG_CAP: usize = 8;

/// One timed portion of a request's lifecycle. The four `Lock*`
/// stages mirror the store's lock tiers (DESIGN.md §8): wait time
/// only, never the work done under the lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// SQL parsing.
    Parse = 0,
    /// Waiting on the snapshot mutex (tier 1).
    LockSnapshot = 1,
    /// Waiting on the table-registry lock (tier 2).
    LockRegistry = 2,
    /// Waiting on a per-table lock (tier 3).
    LockTable = 3,
    /// Waiting on the WAL mutex (tier 4).
    LockWal = 4,
    /// Writing a WAL frame.
    WalAppend = 5,
    /// Forcing the WAL or a snapshot to stable storage.
    WalFsync = 6,
}

/// Number of [`Stage`] variants (the breakdown array length).
pub const STAGES: usize = 7;

impl Stage {
    /// Exposition label.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::LockSnapshot => "lock_snapshot",
            Stage::LockRegistry => "lock_registry",
            Stage::LockTable => "lock_table",
            Stage::LockWal => "lock_wal",
            Stage::WalAppend => "wal_append",
            Stage::WalFsync => "wal_fsync",
        }
    }

    /// All stages, in lifecycle order.
    pub fn all() -> [Stage; STAGES] {
        [
            Stage::Parse,
            Stage::LockSnapshot,
            Stage::LockRegistry,
            Stage::LockTable,
            Stage::LockWal,
            Stage::WalAppend,
            Stage::WalFsync,
        ]
    }
}

thread_local! {
    /// Per-thread stage accumulator for the request in flight. Workers
    /// are single-request-at-a-time, so a plain thread-local suffices.
    static STAGE_NS: [Cell<u64>; STAGES] = const { [const { Cell::new(0) }; STAGES] };
}

/// Clears this thread's stage accumulator (start of a request).
pub fn stage_begin() {
    STAGE_NS.with(|s| {
        for cell in s {
            cell.set(0);
        }
    });
}

/// Drains this thread's stage accumulator (end of a request).
pub fn stage_take() -> [u64; STAGES] {
    STAGE_NS.with(|s| {
        let mut out = [0u64; STAGES];
        for (cell, slot) in s.iter().zip(out.iter_mut()) {
            *slot = cell.replace(0);
        }
        out
    })
}

/// Runs `f`, charging its wall time to `stage` on this thread.
pub fn timed<T>(stage: Stage, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    STAGE_NS.with(|s| {
        let cell = &s[stage as usize];
        cell.set(cell.get().saturating_add(ns));
    });
    out
}

/// One retained worst-request record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowEntry {
    /// The request's sequence number (the store's `requests` counter
    /// at dispatch time), so a record can be lined up with a trace.
    pub seq: u64,
    /// Verb label (`sql`, `mine`, …).
    pub verb: &'static str,
    /// End-to-end dispatch time.
    pub total_ns: u64,
    /// Per-stage breakdown, indexed by [`Stage`].
    pub stages: [u64; STAGES],
}

/// A bounded log of the worst-[`SLOW_LOG_CAP`] requests by total
/// latency. The fast path — a request no slower than everything
/// already retained — is a single atomic load; only genuinely slow
/// requests take the mutex.
#[derive(Debug, Default)]
pub struct SlowLog {
    /// Admission floor: the smallest retained total once the log is
    /// full (0 while it isn't).
    floor_ns: AtomicU64,
    entries: Mutex<Vec<SlowEntry>>,
}

impl SlowLog {
    /// Offers a finished request to the log.
    pub fn offer(&self, entry: SlowEntry) {
        if entry.total_ns <= self.floor_ns.load(Relaxed) {
            return;
        }
        let mut entries = self.entries.lock().unwrap();
        entries.push(entry);
        entries.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.seq.cmp(&b.seq)));
        entries.truncate(SLOW_LOG_CAP);
        if entries.len() == SLOW_LOG_CAP {
            self.floor_ns
                .store(entries[SLOW_LOG_CAP - 1].total_ns, Relaxed);
        }
    }

    /// The retained entries, worst first.
    pub fn entries(&self) -> Vec<SlowEntry> {
        self.entries.lock().unwrap().clone()
    }
}

/// Renders the full exposition: the obs registry (counters, latency
/// histograms with derived percentiles), the store counters, and the
/// slow-request log.
pub fn render_metrics(store: &Store) -> String {
    let mut out = sqlnf_obs::report().to_prometheus();
    let (wal_bytes, wal_records) = store.wal_size();
    out.push_str("# TYPE sqlnf_store gauge\n");
    for line in store
        .stats
        .lines(store.table_names().len(), wal_bytes, wal_records)
    {
        if let Some((name, value)) = line.rsplit_once(' ') {
            let _ = writeln!(out, "sqlnf_store{{name=\"{name}\"}} {value}");
        }
    }
    out.push_str("# TYPE sqlnf_slow_request_ns gauge\n");
    for (rank, e) in store.slow_requests().iter().enumerate() {
        let _ = writeln!(
            out,
            "sqlnf_slow_request_ns{{rank=\"{rank}\",seq=\"{}\",verb=\"{}\",stage=\"total\"}} {}",
            e.seq, e.verb, e.total_ns
        );
        for stage in Stage::all() {
            let ns = e.stages[stage as usize];
            if ns > 0 {
                let _ = writeln!(
                    out,
                    "sqlnf_slow_request_ns{{rank=\"{rank}\",seq=\"{}\",verb=\"{}\",stage=\"{}\"}} {ns}",
                    e.seq,
                    e.verb,
                    stage.as_str()
                );
            }
        }
    }
    out
}

/// One parsed exposition sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric family name.
    pub name: String,
    /// Label pairs, in source order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// The value of the label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parses a text exposition into samples; `#` lines and blank lines
/// are skipped. Errors name the offending line.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_sample(line).ok_or_else(|| format!("bad sample line {line:?}"))?);
    }
    Ok(out)
}

fn parse_sample(line: &str) -> Option<Sample> {
    let (head, value) = match line.find('{') {
        Some(_) => {
            // The value follows the label set's closing brace; the
            // brace can't appear inside label values unescaped-free,
            // so scan from the end.
            let close = line.rfind('}')?;
            (&line[..close + 1], line[close + 1..].trim())
        }
        None => {
            let (name, value) = line.split_once(' ')?;
            (name, value.trim())
        }
    };
    let value: f64 = value.parse().ok()?;
    match head.split_once('{') {
        None => Some(Sample {
            name: head.to_owned(),
            labels: Vec::new(),
            value,
        }),
        Some((name, rest)) => {
            let body = rest.strip_suffix('}')?;
            let mut labels = Vec::new();
            let mut chars = body.chars().peekable();
            while chars.peek().is_some() {
                let mut key = String::new();
                for c in chars.by_ref() {
                    if c == '=' {
                        break;
                    }
                    key.push(c);
                }
                if chars.next() != Some('"') {
                    return None;
                }
                let mut val = String::new();
                loop {
                    match chars.next()? {
                        '\\' => val.push(chars.next()?),
                        '"' => break,
                        c => val.push(c),
                    }
                }
                labels.push((key, val));
                match chars.next() {
                    None => break,
                    Some(',') => continue,
                    Some(_) => return None,
                }
            }
            Some(Sample {
                name: name.to_owned(),
                labels,
                value,
            })
        }
    }
}

/// The per-verb span label of a request — the `name` under which its
/// latency histogram is recorded (`serve.verb.<label>`).
pub fn verb_label(req: &crate::protocol::Request) -> &'static str {
    use crate::protocol::Request;
    match req {
        Request::Ping => "ping",
        Request::Tables => "tables",
        Request::Dump(_) => "dump",
        Request::Mine { .. } => "mine",
        Request::Closure { .. } => "closure",
        Request::Normalize { .. } => "normalize",
        Request::Stats => "stats",
        Request::Metrics => "metrics",
        Request::Trace(_) => "trace",
        Request::Watch { .. } => "watch",
        Request::Unwatch => "unwatch",
        Request::Quit => "quit",
        Request::Shutdown => "shutdown",
        Request::Sql(_) => "sql",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64, total_ns: u64) -> SlowEntry {
        let mut stages = [0u64; STAGES];
        stages[Stage::Parse as usize] = total_ns / 2;
        SlowEntry {
            seq,
            verb: "sql",
            total_ns,
            stages,
        }
    }

    #[test]
    fn slow_log_keeps_the_worst_n() {
        let log = SlowLog::default();
        for seq in 0..100u64 {
            log.offer(entry(seq, seq * 10));
        }
        let entries = log.entries();
        assert_eq!(entries.len(), SLOW_LOG_CAP);
        assert_eq!(entries[0].total_ns, 990, "worst first");
        assert!(entries.windows(2).all(|w| w[0].total_ns >= w[1].total_ns));
        // Fast path: a request under the floor is rejected without
        // changing the log.
        log.offer(entry(200, 1));
        assert_eq!(log.entries(), entries);
    }

    #[test]
    fn stage_accumulator_charges_and_drains() {
        stage_begin();
        let x = timed(Stage::Parse, || 21 * 2);
        assert_eq!(x, 42);
        timed(Stage::LockWal, || std::hint::black_box(()));
        let stages = stage_take();
        // Instant is monotone but can report 0ns for a trivial closure;
        // the drain itself is the property under test.
        assert_eq!(stage_take(), [0; STAGES], "take drains");
        let _ = stages;
    }

    #[test]
    fn exposition_parses_its_own_render() {
        let text = "# comment\n\
                    sqlnf_counter{name=\"a.b\"} 3\n\
                    sqlnf_span_p99_ns{name=\"x\"} 1500\n\
                    sqlnf_store{name=\"stmt.admitted\"} 7\n\
                    sqlnf_slow_request_ns{rank=\"0\",seq=\"9\",verb=\"sql\",stage=\"total\"} 123\n\
                    bare_sample 1.5\n";
        let samples = parse_exposition(text).unwrap();
        assert_eq!(samples.len(), 5);
        assert_eq!(samples[0].name, "sqlnf_counter");
        assert_eq!(samples[0].label("name"), Some("a.b"));
        assert_eq!(samples[0].value, 3.0);
        let slow = &samples[3];
        assert_eq!(slow.label("verb"), Some("sql"));
        assert_eq!(slow.label("stage"), Some("total"));
        assert_eq!(samples[4].labels, Vec::new());
        assert_eq!(samples[4].value, 1.5);
        // Escapes survive the round trip.
        let esc = parse_exposition("m{name=\"a\\\"b\\\\c\"} 1").unwrap();
        assert_eq!(esc[0].label("name"), Some("a\"b\\c"));
        // Malformed lines are named, not swallowed.
        assert!(parse_exposition("not a number here").is_err());
        assert!(parse_exposition("m{unterminated=\"x} 1").is_err());
    }

    #[test]
    fn render_metrics_carries_store_counters_and_slow_log() {
        let store = Store::ephemeral();
        store
            .execute_sql("CREATE TABLE t (a INT NOT NULL, CONSTRAINT k CERTAIN KEY (a));")
            .unwrap();
        store.slow_requests(); // exercise the empty accessor
        store.slow_log().offer(entry(1, 5000));
        let text = render_metrics(&store);
        let samples = parse_exposition(&text).expect("render must parse");
        let admitted = samples
            .iter()
            .find(|s| s.name == "sqlnf_store" && s.label("name") == Some("stmt.admitted"))
            .expect("store counters present");
        assert_eq!(admitted.value, 1.0);
        assert!(samples
            .iter()
            .any(|s| s.name == "sqlnf_slow_request_ns" && s.label("stage") == Some("total")));
        assert!(samples
            .iter()
            .any(|s| s.name == "sqlnf_slow_request_ns" && s.label("stage") == Some("parse")));
    }
}
