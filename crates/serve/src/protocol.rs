//! The line-oriented wire protocol.
//!
//! Clients send UTF-8 lines. A line whose first word is a service verb
//! (case-insensitive, only recognised when no SQL statement is being
//! accumulated) is a complete request on its own:
//!
//! ```text
//! PING                         liveness probe
//! TABLES                       list stored tables
//! DUMP <table>                 table contents as CSV
//! MINE <table> [max_lhs] [sem] discover & classify FDs of the instance;
//!                              an optional trailing semantics token
//!                              (classical|possible|certain|weak) lists
//!                              the minimal FDs of that one semantics
//!                              instead of the default classification
//! CLOSURE <table> <col>...     p- and c-closure of the column set
//! NORMALIZE <table> [sem]      DDL of the VRNF decomposition; an
//!                              optional semantics token is validated
//!                              and echoed (the design itself is
//!                              semantics-invariant: weak implication
//!                              coincides with possible implication)
//! STATS                        server counters
//! METRICS                      Prometheus-style text exposition
//! TRACE [n]                    last n flight-recorder events (default 64)
//! WATCH [table]                stream live discovery events (all tables
//!                              when no table is named)
//! WATCH <table|*> <sem>        same, naming a semantics: `weak` opts
//!                              into the additional `wfd:` facts that
//!                              default subscribers never see; the other
//!                              three tokens are validated no-ops (their
//!                              facts are already in the default stream)
//! UNWATCH                      stop streaming; drains pending events
//! QUIT                         close this session
//! SHUTDOWN                     stop the whole server (final snapshot)
//! ```
//!
//! While a session is watching, the server may interleave framed event
//! lines between replies (never inside one): `EVENT <epoch> <table>
//! +<fact>` / `-<fact>` and `LAGGED <n>` — see [`crate::watch`] for
//! the fact grammar and the backpressure contract.
//!
//! Any other line feeds the SQL accumulator; a statement is complete
//! when every `'…'` string literal (`''` escapes a quote) and every
//! `"…"` quoted identifier is closed and the last character outside
//! them is `;`, at which point the accumulated text is parsed and
//! executed as a script. Every request earns exactly one reply:
//!
//! ```text
//! OK <n> <message>\n     then n payload lines
//! ERR <n> <message>\n    then n payload lines
//! ```

use sqlnf_discovery::check::Semantics;
use std::fmt;

/// How many flight-recorder events a bare `TRACE` returns.
pub const DEFAULT_TRACE_EVENTS: usize = 64;

/// One parsed service request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// List stored tables.
    Tables,
    /// Dump a table as CSV.
    Dump(String),
    /// Mine and classify the FDs of a stored instance.
    Mine {
        /// Target table.
        table: String,
        /// LHS size cap.
        max_lhs: usize,
        /// `None` runs the default possible/certain classification;
        /// `Some(sem)` lists the minimal FDs of that one semantics.
        semantics: Option<Semantics>,
    },
    /// Closure of a set of columns under a table's declared FDs.
    Closure {
        /// Target table.
        table: String,
        /// Column names whose closure to compute.
        columns: Vec<String>,
    },
    /// VRNF decomposition of a stored table's design.
    Normalize {
        /// Target table.
        table: String,
        /// Optional semantics token, validated and echoed; the
        /// decomposition itself is semantics-invariant (weak
        /// implication coincides with possible implication, and the
        /// design language is p/c).
        semantics: Option<Semantics>,
    },
    /// Server counters.
    Stats,
    /// Prometheus-style text exposition of counters, latency
    /// histograms (with derived percentiles), store state, and the
    /// slow-request log.
    Metrics,
    /// The last `n` flight-recorder trace events.
    Trace(usize),
    /// Subscribe this session to live discovery events, optionally
    /// restricted to one table.
    Watch {
        /// Restrict to one table (`None` = all tables).
        table: Option<String>,
        /// Include the `wfd:` weak-FD facts in this subscriber's
        /// stream (`WATCH <t|*> weak`). Default streams never carry
        /// them, keeping pre-weak consumers byte-identical.
        weak: bool,
    },
    /// Cancel this session's subscription.
    Unwatch,
    /// End this session.
    Quit,
    /// Stop the server.
    Shutdown,
    /// A complete SQL script (CREATE TABLE / INSERT statements).
    Sql(String),
}

/// A reply: a status line plus payload lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// `true` for `OK`, `false` for `ERR`.
    pub ok: bool,
    /// One-line human-readable summary.
    pub message: String,
    /// Payload lines (the count is announced in the status line).
    pub lines: Vec<String>,
}

impl Reply {
    /// An `OK` reply without payload.
    pub fn ok(message: impl Into<String>) -> Reply {
        Reply {
            ok: true,
            message: sanitize(message.into()),
            lines: Vec::new(),
        }
    }

    /// An `OK` reply with payload lines.
    pub fn ok_with(message: impl Into<String>, lines: Vec<String>) -> Reply {
        Reply {
            ok: true,
            message: sanitize(message.into()),
            lines,
        }
    }

    /// An `ERR` reply.
    pub fn err(message: impl Into<String>) -> Reply {
        Reply {
            ok: false,
            message: sanitize(message.into()),
            lines: Vec::new(),
        }
    }
}

impl fmt::Display for Reply {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} {} {}",
            if self.ok { "OK" } else { "ERR" },
            self.lines.len(),
            self.message
        )?;
        for line in &self.lines {
            writeln!(f, "{line}")?;
        }
        Ok(())
    }
}

/// Status lines are single lines: embedded newlines become spaces.
fn sanitize(s: String) -> String {
    if s.contains('\n') {
        s.replace('\n', " ")
    } else {
        s
    }
}

/// Parses a reply off a reader (the client side of the protocol).
pub fn read_reply(reader: &mut impl std::io::BufRead) -> std::io::Result<Reply> {
    use std::io::{Error, ErrorKind};
    let mut status = String::new();
    if reader.read_line(&mut status)? == 0 {
        return Err(Error::new(ErrorKind::UnexpectedEof, "server closed"));
    }
    let status = status.trim_end_matches(['\r', '\n']);
    let (ok, n, message) = parse_status(status)?;
    let lines = read_payload(reader, n)?;
    Ok(Reply { ok, message, lines })
}

/// Splits a status line into `(ok, payload-count, message)`. Exposed
/// within the crate so the client can classify a line that might
/// instead be a framed `EVENT`/`LAGGED` while a session is watching.
pub(crate) fn parse_status(status: &str) -> std::io::Result<(bool, usize, String)> {
    use std::io::{Error, ErrorKind};
    let bad = || {
        Error::new(
            ErrorKind::InvalidData,
            format!("bad status line {status:?}"),
        )
    };
    let mut parts = status.splitn(3, ' ');
    let ok = match parts.next() {
        Some("OK") => true,
        Some("ERR") => false,
        _ => return Err(bad()),
    };
    let n: usize = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let message = parts.next().unwrap_or("").to_owned();
    Ok((ok, n, message))
}

/// Reads `n` announced payload lines (events never interleave inside
/// a reply, so this read is unconditional).
pub(crate) fn read_payload(
    reader: &mut impl std::io::BufRead,
    n: usize,
) -> std::io::Result<Vec<String>> {
    use std::io::{Error, ErrorKind};
    let mut lines = Vec::with_capacity(n);
    for _ in 0..n {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(Error::new(ErrorKind::UnexpectedEof, "truncated payload"));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        lines.push(line);
    }
    Ok(lines)
}

/// Accumulates request lines into complete [`Request`]s. SQL
/// statements may span lines (and contain `;` inside string literals);
/// verbs are single lines recognised only between statements.
#[derive(Debug, Default)]
pub struct Accumulator {
    buf: String,
}

impl Accumulator {
    /// A fresh, empty accumulator.
    pub fn new() -> Accumulator {
        Accumulator::default()
    }

    /// Whether a partial SQL statement is pending.
    pub fn is_pending(&self) -> bool {
        !self.buf.trim().is_empty()
    }

    /// Feeds one input line (without its terminator); returns a
    /// complete request if this line finished one.
    pub fn push_line(&mut self, line: &str) -> Option<Request> {
        if !self.is_pending() {
            if line.trim().is_empty() {
                self.buf.clear();
                return None;
            }
            if let Some(req) = parse_verb(line) {
                self.buf.clear();
                return Some(req);
            }
        }
        self.buf.push_str(line);
        self.buf.push('\n');
        if sql_complete(&self.buf) {
            let sql = std::mem::take(&mut self.buf);
            return Some(Request::Sql(sql));
        }
        None
    }
}

/// Whether a line parses as a service verb (clients use this to mirror
/// the server's framing when scripting a session).
pub fn is_verb_line(line: &str) -> bool {
    parse_verb(line).is_some()
}

/// A statement is complete when every quoted region is closed and the
/// last character outside quotes is `;`. Mirrors the lexer's rules:
/// `'…'` strings escape a quote as `''`; `"…"` identifiers run to the
/// next `"` with no escape.
pub fn statement_complete(buf: &str) -> bool {
    sql_complete(buf)
}

fn sql_complete(buf: &str) -> bool {
    let bytes = buf.as_bytes();
    let mut last = 0u8;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            q @ (b'\'' | b'"') => {
                i += 1;
                loop {
                    match bytes.get(i) {
                        // Unclosed region: keep accumulating.
                        None => return false,
                        Some(&b) if b == q => {
                            if q == b'\'' && bytes.get(i + 1) == Some(&q) {
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(_) => i += 1,
                    }
                }
                last = q;
            }
            b => {
                if !b.is_ascii_whitespace() {
                    last = b;
                }
                i += 1;
            }
        }
    }
    last == b';'
}

/// `*` names "all tables" where a semantics token follows the slot.
fn wildcard_table(t: &str) -> Option<String> {
    if t == "*" {
        None
    } else {
        Some(t.to_owned())
    }
}

/// Tries to read a line as a service verb.
fn parse_verb(line: &str) -> Option<Request> {
    let mut words = line.split_whitespace();
    let verb = words.next()?.to_ascii_uppercase();
    let rest: Vec<&str> = words.collect();
    let one_table = |rest: &[&str]| -> Option<String> {
        match rest {
            [t] => Some((*t).to_owned()),
            _ => None,
        }
    };
    match (verb.as_str(), rest.as_slice()) {
        ("PING", []) => Some(Request::Ping),
        ("TABLES", []) => Some(Request::Tables),
        ("STATS", []) => Some(Request::Stats),
        ("METRICS", []) => Some(Request::Metrics),
        ("TRACE", []) => Some(Request::Trace(DEFAULT_TRACE_EVENTS)),
        ("TRACE", [n]) => n.parse().ok().map(Request::Trace),
        ("QUIT", []) => Some(Request::Quit),
        ("SHUTDOWN", []) => Some(Request::Shutdown),
        ("WATCH", []) => Some(Request::Watch {
            table: None,
            weak: false,
        }),
        ("WATCH", [t]) => Some(Request::Watch {
            table: wildcard_table(t),
            weak: false,
        }),
        ("WATCH", [t, sem]) => Semantics::parse(sem).map(|s| Request::Watch {
            table: wildcard_table(t),
            weak: s == Semantics::Weak,
        }),
        ("UNWATCH", []) => Some(Request::Unwatch),
        ("DUMP", rest) => one_table(rest).map(Request::Dump),
        ("NORMALIZE", [t]) => Some(Request::Normalize {
            table: (*t).to_owned(),
            semantics: None,
        }),
        ("NORMALIZE", [t, sem]) => Semantics::parse(sem).map(|s| Request::Normalize {
            table: (*t).to_owned(),
            semantics: Some(s),
        }),
        ("MINE", [table]) => Some(Request::Mine {
            table: (*table).to_owned(),
            max_lhs: crate::store::DEFAULT_MINE_LHS,
            semantics: None,
        }),
        // The second word is a LHS cap when numeric, else a semantics
        // token (`MINE t 3`, `MINE t weak`, `MINE t 3 weak`).
        ("MINE", [table, x]) => match x.parse::<usize>() {
            Ok(max_lhs) => Some(Request::Mine {
                table: (*table).to_owned(),
                max_lhs,
                semantics: None,
            }),
            Err(_) => Semantics::parse(x).map(|s| Request::Mine {
                table: (*table).to_owned(),
                max_lhs: crate::store::DEFAULT_MINE_LHS,
                semantics: Some(s),
            }),
        },
        ("MINE", [table, cap, sem]) => match (cap.parse::<usize>(), Semantics::parse(sem)) {
            (Ok(max_lhs), Some(s)) => Some(Request::Mine {
                table: (*table).to_owned(),
                max_lhs,
                semantics: Some(s),
            }),
            _ => None,
        },
        // Columns may be parenthesized and/or comma-separated:
        // `CLOSURE t (a, b)` and `CLOSURE t a b` both work.
        ("CLOSURE", [table, cols @ ..]) => {
            let columns: Vec<String> = cols
                .iter()
                .flat_map(|c| c.split([',', '(', ')']))
                .filter(|c| !c.is_empty())
                .map(str::to_owned)
                .collect();
            if columns.is_empty() {
                None
            } else {
                Some(Request::Closure {
                    table: (*table).to_owned(),
                    columns,
                })
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbs_parse_case_insensitively() {
        let mut acc = Accumulator::new();
        assert_eq!(acc.push_line("ping"), Some(Request::Ping));
        assert_eq!(acc.push_line("QUIT"), Some(Request::Quit));
        assert_eq!(
            acc.push_line("mine purchase 4"),
            Some(Request::Mine {
                table: "purchase".into(),
                max_lhs: 4,
                semantics: None
            })
        );
        assert_eq!(
            acc.push_line("CLOSURE t a b"),
            Some(Request::Closure {
                table: "t".into(),
                columns: vec!["a".into(), "b".into()]
            })
        );
        // The documented parenthesized form, with or without spaces.
        for line in ["CLOSURE t (a, b)", "CLOSURE t (a,b)", "closure t ( a , b )"] {
            assert_eq!(
                acc.push_line(line),
                Some(Request::Closure {
                    table: "t".into(),
                    columns: vec!["a".into(), "b".into()]
                }),
                "{line}"
            );
        }
    }

    #[test]
    fn semantics_tokens_parse_on_mine_watch_normalize() {
        let mut acc = Accumulator::new();
        assert_eq!(
            acc.push_line("MINE t weak"),
            Some(Request::Mine {
                table: "t".into(),
                max_lhs: crate::store::DEFAULT_MINE_LHS,
                semantics: Some(Semantics::Weak)
            })
        );
        assert_eq!(
            acc.push_line("mine t 3 CERTAIN"),
            Some(Request::Mine {
                table: "t".into(),
                max_lhs: 3,
                semantics: Some(Semantics::Certain)
            })
        );
        // A bogus token is not a verb — the line becomes SQL.
        assert_eq!(acc.push_line("MINE t 3 sideways"), None);
        assert!(acc.is_pending());
        acc.push_line(";");
        assert_eq!(
            acc.push_line("WATCH t weak"),
            Some(Request::Watch {
                table: Some("t".into()),
                weak: true
            })
        );
        assert_eq!(
            acc.push_line("WATCH * weak"),
            Some(Request::Watch {
                table: None,
                weak: true
            })
        );
        // Naming a default-stream semantics is a validated no-op.
        assert_eq!(
            acc.push_line("WATCH t possible"),
            Some(Request::Watch {
                table: Some("t".into()),
                weak: false
            })
        );
        // A bare table named "weak" is still a table filter.
        assert_eq!(
            acc.push_line("WATCH weak"),
            Some(Request::Watch {
                table: Some("weak".into()),
                weak: false
            })
        );
        assert_eq!(
            acc.push_line("NORMALIZE t weak"),
            Some(Request::Normalize {
                table: "t".into(),
                semantics: Some(Semantics::Weak)
            })
        );
        assert_eq!(
            acc.push_line("NORMALIZE t"),
            Some(Request::Normalize {
                table: "t".into(),
                semantics: None
            })
        );
    }

    #[test]
    fn metrics_and_trace_verbs_parse() {
        let mut acc = Accumulator::new();
        assert_eq!(acc.push_line("metrics"), Some(Request::Metrics));
        assert_eq!(
            acc.push_line("TRACE"),
            Some(Request::Trace(DEFAULT_TRACE_EVENTS))
        );
        assert_eq!(acc.push_line("trace 16"), Some(Request::Trace(16)));
        // A malformed count is not a verb — it starts a SQL statement.
        assert_eq!(acc.push_line("TRACE lots"), None);
        assert!(acc.is_pending());
    }

    #[test]
    fn sql_accumulates_across_lines_and_quotes() {
        let mut acc = Accumulator::new();
        assert_eq!(acc.push_line("CREATE TABLE t ("), None);
        assert_eq!(acc.push_line("  a INT NOT NULL"), None);
        let Some(Request::Sql(sql)) = acc.push_line(");") else {
            panic!("expected completed SQL");
        };
        assert!(sql.contains("CREATE TABLE t"));
        assert!(!acc.is_pending());

        // A ';' inside a string literal does not complete the statement,
        // and a verb word inside a pending statement is not a verb.
        assert_eq!(acc.push_line("INSERT INTO t VALUES ('semi;"), None);
        assert_eq!(acc.push_line("QUIT"), None);
        let Some(Request::Sql(sql)) = acc.push_line("colon');") else {
            panic!("expected completed SQL");
        };
        assert!(sql.contains("semi;\nQUIT\ncolon"));
    }

    #[test]
    fn double_quoted_identifiers_frame_correctly() {
        let mut acc = Accumulator::new();
        // An apostrophe inside a quoted identifier must not be read as
        // opening a string — the statement completes on this line.
        let Some(Request::Sql(sql)) = acc.push_line("CREATE TABLE \"a'b\" (x INT);") else {
            panic!("expected completed SQL");
        };
        assert!(sql.contains("\"a'b\""));
        assert!(!acc.is_pending());
        // A ';' inside a quoted identifier does not end the statement.
        assert_eq!(acc.push_line("INSERT INTO \"semi;"), None);
        assert!(matches!(
            acc.push_line("colon\" VALUES (1);"),
            Some(Request::Sql(_))
        ));
        // A trailing '' is an escaped quote, not a closed string: the
        // statement stays pending until the literal really closes.
        assert_eq!(acc.push_line("INSERT INTO t VALUES ('x'');"), None);
        assert!(matches!(acc.push_line("');"), Some(Request::Sql(_))));
        // A ';' at the very end of a closed string does not terminate.
        assert!(!statement_complete("INSERT INTO t VALUES ('x;'"));
        assert!(!statement_complete("INSERT INTO t VALUES ('x;')"));
        assert!(statement_complete("INSERT INTO t VALUES ('x;');"));
    }

    #[test]
    fn reply_round_trips_through_display_and_read() {
        let reply = Reply::ok_with("2 rows", vec!["a,b".into(), "1,2".into()]);
        let text = reply.to_string();
        let mut cursor = std::io::Cursor::new(text.into_bytes());
        let back = read_reply(&mut cursor).unwrap();
        assert_eq!(back, reply);
        let err = Reply::err("bad\nthing");
        assert_eq!(err.message, "bad thing");
    }
}
