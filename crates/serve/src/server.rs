//! The TCP server: an acceptor thread feeding a fixed-size pool of
//! session workers over an mpsc queue, all sharing one [`Store`].
//!
//! Shutdown comes in two flavours:
//!
//! * [`Server::shutdown`] — graceful: stop accepting, let every
//!   session finish its current request and drain, fsync the WAL and
//!   write a final snapshot;
//! * [`Server::kill`] — simulated crash for durability tests: threads
//!   stop without a final snapshot or fsync, leaving recovery entirely
//!   to the WAL.

use crate::commit::FsyncMode;
use crate::metrics::{self, SlowEntry};
use crate::protocol::{Accumulator, Reply, Request};
use crate::store::{Pending, ServeError, Store, StoreOptions};
use crate::watch::Subscription;
use sqlnf_core::prelude::*;
use sqlnf_discovery::prelude::*;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often blocked threads re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(100);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// WAL directory; `None` runs without durability.
    pub wal_dir: Option<PathBuf>,
    /// Session worker threads.
    pub workers: usize,
    /// Admitted statements between automatic snapshots (0 = only on
    /// graceful shutdown).
    pub snapshot_every: u64,
    /// Number of WAL shards (tables hash across them, so unrelated
    /// tables can commit on independent fsyncs).
    pub wal_shards: usize,
    /// How long an elected committer lingers collecting more frames
    /// before writing its batch (0 = drain immediately).
    pub commit_window: Duration,
    /// Fsync discipline at the ack boundary (see
    /// [`FsyncMode`](crate::commit::FsyncMode)).
    pub fsync: FsyncMode,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            wal_dir: None,
            workers: 4,
            snapshot_every: 0,
            wal_shards: 1,
            commit_window: Duration::ZERO,
            fsync: FsyncMode::Batch,
        }
    }
}

/// A running server; dropping it without calling [`shutdown`]
/// (`Server::shutdown`) aborts like [`kill`](Server::kill).
#[derive(Debug)]
pub struct Server {
    store: Arc<Store>,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    kill: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, recovers the store from the WAL directory (if any), and
    /// starts the acceptor and worker threads.
    pub fn start(config: ServeConfig) -> Result<Server, ServeError> {
        // The flight recorder backs the TRACE verb; recording costs a
        // few atomic stores per span, nothing when obs is compiled out.
        sqlnf_obs::set_flight(true);
        let opts = StoreOptions {
            snapshot_every: config.snapshot_every,
            wal_shards: config.wal_shards,
            commit_window: config.commit_window,
            fsync: config.fsync,
        };
        let store = Arc::new(match &config.wal_dir {
            Some(dir) => Store::open_with(dir, opts)?,
            None => Store::ephemeral_with(opts),
        });
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let kill = Arc::new(AtomicBool::new(false));

        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let store = Arc::clone(&store);
                let shutdown = Arc::clone(&shutdown);
                let kill = Arc::clone(&kill);
                std::thread::spawn(move || worker_loop(&rx, &store, &shutdown, &kill))
            })
            .collect();

        let acceptor = {
            let store = Arc::clone(&store);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    store
                        .stats
                        .sessions
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    sqlnf_obs::count!("serve.sessions");
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                // tx drops here: workers drain the queue and exit.
            })
        };

        Ok(Server {
            store,
            local_addr,
            shutdown,
            kill,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (use this when the config asked for port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared store (for in-process inspection by tests).
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// Blocks until the shutdown flag flips (a client sent `SHUTDOWN`).
    pub fn wait_shutdown(&self) {
        while !self.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(POLL);
        }
    }

    fn stop_threads(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // The acceptor blocks in accept(); poke it awake.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    /// Graceful shutdown: stop accepting, drain sessions, fsync the
    /// WAL and write a final snapshot.
    pub fn shutdown(mut self) -> Result<(), ServeError> {
        self.stop_threads();
        self.store.sync()?;
        self.store.snapshot()?;
        Ok(())
    }

    /// Simulated crash: threads stop mid-flight, no final snapshot and
    /// no fsync — recovery must come from the WAL alone.
    pub fn kill(mut self) {
        self.kill.store(true, Ordering::SeqCst);
        self.stop_threads();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.acceptor.is_some() || !self.workers.is_empty() {
            self.kill.store(true, Ordering::SeqCst);
            self.stop_threads();
        }
    }
}

fn worker_loop(
    rx: &Mutex<Receiver<TcpStream>>,
    store: &Arc<Store>,
    shutdown: &AtomicBool,
    kill: &AtomicBool,
) {
    loop {
        // Don't hold the mutex while blocked: contended recv would
        // serialize the pool.
        let next = { rx.lock().unwrap().recv_timeout(POLL) };
        match next {
            Ok(stream) => {
                if kill.load(Ordering::SeqCst) {
                    continue; // crash simulation: drop without replying
                }
                let _ = handle_session(store, stream, shutdown, kill);
            }
            Err(RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::SeqCst) {
                    // Graceful drain keeps going until the acceptor has
                    // exited and the queue is empty; the sender dropping
                    // turns the next recv into Disconnected.
                    continue;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Runs one session to completion: reads lines, accumulates requests,
/// writes one reply per request.
///
/// SQL requests are pipelining-aware: each one is applied and
/// *enqueued* immediately, but its reply is staged and its commit
/// ticket parked in `pending` until the read buffer runs dry — so a
/// client that writes N statements before reading N replies gets all
/// of them applied, committed in (at most) one shared fsync, and then
/// answered in one write. A client that waits for each reply settles
/// after every request and observes no difference.
fn handle_session(
    store: &Arc<Store>,
    stream: TcpStream,
    shutdown: &AtomicBool,
    kill: &AtomicBool,
) -> io::Result<()> {
    stream.set_read_timeout(Some(POLL))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut acc = Accumulator::new();
    let mut line = String::new();
    let mut staged: Vec<(Reply, usize)> = Vec::new();
    let mut pending = Pending::default();
    // The session's live WATCH subscription, if any. Events are
    // drained to the socket only between requests (on the idle poll),
    // so a framed event never splits a reply. Dropping the handle —
    // on UNWATCH, QUIT, or any disconnect path — unregisters it.
    let mut watching: Option<Subscription> = None;
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => {
                // Client closed; ack whatever it pipelined before EOF.
                settle(store, &mut writer, &mut staged, &mut pending)?;
                return Ok(());
            }
            Ok(_) => {
                if !line.ends_with('\n') {
                    // Timeout can split a line; keep reading it.
                    continue;
                }
                let complete = std::mem::take(&mut line);
                let Some(req) = acc.push_line(complete.trim_end_matches(['\r', '\n'])) else {
                    continue;
                };
                sqlnf_obs::count!("serve.requests");
                match req {
                    Request::Quit => {
                        settle(store, &mut writer, &mut staged, &mut pending)?;
                        write_reply(&mut writer, &Reply::ok("bye"))?;
                        return Ok(());
                    }
                    Request::Shutdown => {
                        settle(store, &mut writer, &mut staged, &mut pending)?;
                        write_reply(&mut writer, &Reply::ok("shutting down"))?;
                        shutdown.store(true, Ordering::SeqCst);
                        return Ok(());
                    }
                    // WATCH and UNWATCH mutate session state, so they
                    // are handled here rather than in `dispatch`.
                    Request::Watch { table, weak } => {
                        settle(store, &mut writer, &mut staged, &mut pending)?;
                        let _span = sqlnf_obs::span!("serve.verb.watch");
                        let mut label = table.as_deref().unwrap_or("*").to_owned();
                        if weak {
                            label.push_str(" weak");
                        }
                        watching = Some(store.watch_opts(table, weak));
                        write_reply(&mut writer, &Reply::ok(format!("watching {label}")))?;
                    }
                    Request::Unwatch => {
                        settle(store, &mut writer, &mut staged, &mut pending)?;
                        let _span = sqlnf_obs::span!("serve.verb.unwatch");
                        // Flush everything queued before the
                        // subscription dies, then confirm.
                        flush_watch(&mut writer, watching.as_ref())?;
                        let reply = if watching.take().is_some() {
                            Reply::ok("unwatched")
                        } else {
                            Reply::err("not watching")
                        };
                        write_reply(&mut writer, &reply)?;
                    }
                    Request::Sql(src) => {
                        let (reply, tickets) = dispatch_sql_enqueue(store, &src, &mut pending);
                        staged.push((reply, tickets));
                        // Settle as soon as the pipe runs dry:
                        // everything the client already sent shares
                        // this one commit.
                        if reader.buffer().is_empty() {
                            settle(store, &mut writer, &mut staged, &mut pending)?;
                            if kill.load(Ordering::SeqCst) {
                                return Ok(());
                            }
                        }
                    }
                    req => {
                        // Earlier SQL must be acknowledged (and
                        // counted) before a read verb looks at the
                        // store.
                        settle(store, &mut writer, &mut staged, &mut pending)?;
                        let reply = dispatch(store, req);
                        write_reply(&mut writer, &reply)?;
                        if kill.load(Ordering::SeqCst) {
                            return Ok(());
                        }
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                settle(store, &mut writer, &mut staged, &mut pending)?;
                flush_watch(&mut writer, watching.as_ref())?;
                if shutdown.load(Ordering::SeqCst) || kill.load(Ordering::SeqCst) {
                    return Ok(()); // drain: drop idle sessions
                }
            }
            Err(e) => {
                // The socket died; still redeem enqueued tickets so
                // the admission counters agree with the commit log.
                let _ = store.commit_pending(&mut pending);
                return Err(e);
            }
        }
    }
}

/// Commits every pending ticket and flushes the staged replies in
/// request order. Commit outcomes are per ticket: exactly the replies
/// whose own statements failed to become durable flip to errors — an
/// undurable statement is never acked, and a statement durable on a
/// healthy shard is never un-acked by a neighbour's failure. (A reply
/// already reporting a statement-level refusal keeps its original
/// error even if one of its earlier, applied statements also failed
/// to commit.) A snapshot failure after the commit is a session-level
/// error, not a statement rejection.
fn settle(
    store: &Store,
    writer: &mut TcpStream,
    staged: &mut Vec<(Reply, usize)>,
    pending: &mut Pending,
) -> io::Result<()> {
    let (outcomes, aftermath) = store.commit_pending_each(pending);
    if staged.is_empty() {
        return aftermath.map_err(|e| io::Error::other(e.to_string()));
    }
    let mut out = String::new();
    let mut taken = 0usize;
    for (reply, tickets) in staged.drain(..) {
        let end = (taken + tickets).min(outcomes.len());
        let mine = &outcomes[taken.min(end)..end];
        taken = end;
        match mine.iter().find_map(|r| r.as_ref().err()) {
            Some(e) if reply.ok => out.push_str(&Reply::err(e.to_string()).to_string()),
            _ => out.push_str(&reply.to_string()),
        }
    }
    writer.write_all(out.as_bytes())?;
    writer.flush()?;
    aftermath.map_err(|e| io::Error::other(e.to_string()))
}

fn write_reply(writer: &mut TcpStream, reply: &Reply) -> io::Result<()> {
    writer.write_all(reply.to_string().as_bytes())?;
    writer.flush()
}

/// Drain a watching session's queued discovery events to the socket.
/// Called only between requests (idle poll or UNWATCH), so events
/// never interleave inside a reply.
fn flush_watch(writer: &mut TcpStream, watching: Option<&Subscription>) -> io::Result<()> {
    if let Some(sub) = watching {
        let lines = sub.drain();
        if !lines.is_empty() {
            let mut out = String::new();
            for line in &lines {
                out.push_str(line);
                out.push('\n');
            }
            writer.write_all(out.as_bytes())?;
            writer.flush()?;
        }
    }
    Ok(())
}

/// The SQL half of [`dispatch`]: applies and enqueues, but leaves the
/// commit wait to [`settle`] so pipelined requests share a batch. The
/// per-request span and slow-log entry cover parse/apply/enqueue; the
/// shared commit wait is accounted separately under
/// `serve.commit.wait`. Returns the staged reply and how many commit
/// tickets this request pushed into `pending` — the reply must be
/// withheld until exactly those tickets settle. (A refused script
/// still owns the tickets of its earlier, applied statements.)
fn dispatch_sql_enqueue(store: &Store, src: &str, pending: &mut Pending) -> (Reply, usize) {
    let _span = sqlnf_obs::span!("serve.dispatch");
    let seq = store.stats.requests.fetch_add(1, Ordering::Relaxed) + 1;
    metrics::stage_begin();
    let start = std::time::Instant::now();
    let before = pending.len();
    let result = {
        #[allow(clippy::let_unit_value)]
        let _verb_span = sqlnf_obs::span!("serve.verb.sql");
        store.execute_sql_enqueue(src, pending)
    };
    let total_ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    store.slow_log().offer(SlowEntry {
        seq,
        verb: "sql",
        total_ns,
        stages: metrics::stage_take(),
    });
    let tickets = pending.len() - before;
    match result {
        Ok(applied) => (
            Reply::ok(format!(
                "applied {applied} statement{}",
                if applied == 1 { "" } else { "s" }
            )),
            tickets,
        ),
        Err(e) => (Reply::err(e.to_string()), tickets),
    }
}

/// Executes one request against the store, recording its latency in
/// the aggregate `serve.dispatch` histogram and a per-verb
/// `serve.verb.<label>` histogram, and offering the finished request
/// (with its per-stage breakdown) to the store's slow-request log.
pub fn dispatch(store: &Store, req: Request) -> Reply {
    let _span = sqlnf_obs::span!("serve.dispatch");
    let verb = metrics::verb_label(&req);
    let seq = store.stats.requests.fetch_add(1, Ordering::Relaxed) + 1;
    metrics::stage_begin();
    let start = std::time::Instant::now();
    let result = {
        // `span!` needs a literal name, so per-verb histograms route
        // through one arm per verb. With `obs` compiled out every arm
        // is unit, hence the allow.
        #[allow(clippy::let_unit_value)]
        let _verb_span = match verb {
            "ping" => sqlnf_obs::span!("serve.verb.ping"),
            "tables" => sqlnf_obs::span!("serve.verb.tables"),
            "dump" => sqlnf_obs::span!("serve.verb.dump"),
            "mine" => sqlnf_obs::span!("serve.verb.mine"),
            "closure" => sqlnf_obs::span!("serve.verb.closure"),
            "normalize" => sqlnf_obs::span!("serve.verb.normalize"),
            "stats" => sqlnf_obs::span!("serve.verb.stats"),
            "metrics" => sqlnf_obs::span!("serve.verb.metrics"),
            "trace" => sqlnf_obs::span!("serve.verb.trace"),
            "watch" => sqlnf_obs::span!("serve.verb.watch"),
            "unwatch" => sqlnf_obs::span!("serve.verb.unwatch"),
            "sql" => sqlnf_obs::span!("serve.verb.sql"),
            _ => sqlnf_obs::span!("serve.verb.other"),
        };
        run_request(store, req)
    };
    let total_ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    store.slow_log().offer(SlowEntry {
        seq,
        verb,
        total_ns,
        stages: metrics::stage_take(),
    });
    match result {
        Ok(reply) => reply,
        Err(e) => Reply::err(e.to_string()),
    }
}

fn run_request(store: &Store, req: Request) -> Result<Reply, ServeError> {
    match req {
        Request::Ping => Ok(Reply::ok("pong")),
        Request::Quit => Ok(Reply::ok("bye")),
        Request::Shutdown => Ok(Reply::ok("shutting down")),
        // Session-stateful verbs; `handle_session` intercepts them, so
        // this arm is only reachable through a direct `dispatch` call.
        Request::Watch { .. } | Request::Unwatch => Ok(Reply::err(
            "WATCH requires an interactive session".to_string(),
        )),
        Request::Tables => {
            let names = store.table_names();
            Ok(Reply::ok_with(format!("{} tables", names.len()), names))
        }
        Request::Stats => {
            let (wal_bytes, wal_records) = store.wal_size();
            let lines = store
                .stats
                .lines(store.table_names().len(), wal_bytes, wal_records);
            Ok(Reply::ok_with("server counters", lines))
        }
        Request::Metrics => {
            let text = metrics::render_metrics(store);
            let lines: Vec<String> = text.lines().map(str::to_owned).collect();
            Ok(Reply::ok_with("metrics exposition", lines))
        }
        Request::Trace(n) => {
            let events = sqlnf_obs::flight_snapshot(n);
            let lines: Vec<String> = events.iter().map(|e| e.line()).collect();
            Ok(Reply::ok_with(
                format!("{} flight events", lines.len()),
                lines,
            ))
        }
        Request::Sql(src) => {
            let applied = store.execute_sql(&src)?;
            Ok(Reply::ok(format!(
                "applied {applied} statement{}",
                if applied == 1 { "" } else { "s" }
            )))
        }
        Request::Dump(table) => store.with_table(&table, |st| {
            let csv = table_to_csv(st.data());
            let lines: Vec<String> = csv.lines().map(str::to_owned).collect();
            Reply::ok_with(format!("{} rows", st.data().len()), lines)
        }),
        Request::Mine {
            table,
            max_lhs,
            semantics,
        } => {
            // Snapshot the instance under the read lock, then mine
            // *outside* it: a full mining run is O(2^arity · rows)
            // and must not stall writers (or the snapshotter, which
            // takes every table lock in name order) for its duration.
            // See DESIGN.md §8.
            let snap = store.with_table(&table, |st| st.data().clone())?;
            let max_lhs = max_lhs.clamp(1, snap.schema().arity().max(1));
            // Without a semantics token the reply is byte-identical to
            // the pre-weak protocol: the combined p/c report.
            let report = match semantics {
                Some(sem) => semantics_report(&table, &snap, sem, max_lhs, DEFAULT_CACHE_BUDGET),
                None => mine_report(&table, &snap, max_lhs, DEFAULT_CACHE_BUDGET),
            };
            let lines: Vec<String> = report.lines().map(str::to_owned).collect();
            Ok(Reply::ok_with("mined", lines))
        }
        Request::Closure { table, columns } => {
            store.with_table(&table, |st| closure_reply(st, &columns))?
        }
        Request::Normalize { table, semantics } => store.with_table(&table, |st| {
            let design = SchemaDesign::new(st.data().schema().clone(), st.sigma().clone());
            // The VRNF target is semantics-invariant (weak implication
            // collapses to possible, see the coincidence theorem), so a
            // semantics token only annotates the reply.
            let reply = normalize_reply(&design);
            match (reply, semantics) {
                (Ok(mut r), Some(sem)) => {
                    r.message = format!("{} ({} semantics)", r.message, sem.token());
                    Ok(r)
                }
                (r, _) => r,
            }
        })?,
    }
}

fn closure_reply(st: &StoredTable, columns: &[String]) -> Result<Reply, ServeError> {
    let schema = st.data().schema();
    let mut x = AttrSet::EMPTY;
    for col in columns {
        let a = schema
            .attr(col)
            .ok_or_else(|| ServeError::Bad(format!("unknown column {col:?}")))?;
        x.insert(a);
    }
    let fds = &st.sigma().fds;
    let p = p_closure(fds, schema.nfs(), x);
    let c = c_closure(fds, schema.nfs(), x);
    Ok(Reply::ok_with(
        format!("closure of {}", schema.display_set(x)),
        vec![
            format!("p-closure {}", schema.display_set(p)),
            format!("c-closure {}", schema.display_set(c)),
        ],
    ))
}

fn normalize_reply(design: &SchemaDesign) -> Result<Reply, ServeError> {
    if design.is_vrnf() == Ok(true) {
        let ddl = render_create_table(design.schema(), design.sigma());
        return Ok(Reply::ok_with(
            "already in VRNF",
            ddl.lines().map(str::to_owned).collect(),
        ));
    }
    match design.normalize() {
        Ok(normalized) => {
            let mut lines = Vec::new();
            for child in &normalized.children {
                for l in render_create_table(child.schema(), child.sigma()).lines() {
                    lines.push(l.to_owned());
                }
            }
            Ok(Reply::ok_with(
                format!("{} tables", normalized.children.len()),
                lines,
            ))
        }
        Err(e) => Err(ServeError::Bad(format!("cannot normalize: {e}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DDL: &str = "CREATE TABLE purchase (
        order_id INT NOT NULL,
        item     TEXT NOT NULL,
        catalog  TEXT,
        price    INT NOT NULL,
        CONSTRAINT line CERTAIN FD (order_id, item, catalog)
                                  -> (order_id, item, catalog, price)
    );";

    fn seeded_store() -> Store {
        let store = Store::ephemeral();
        store.execute_sql(DDL).unwrap();
        store
            .execute_sql(
                "INSERT INTO purchase VALUES (1, 'Fitbit', NULL, 240), (2, 'Doll', 'K', 25);",
            )
            .unwrap();
        store
    }

    #[test]
    fn dispatch_covers_every_verb() {
        let store = seeded_store();
        assert!(dispatch(&store, Request::Ping).ok);
        let tables = dispatch(&store, Request::Tables);
        assert_eq!(tables.lines, vec!["purchase".to_owned()]);
        let dump = dispatch(&store, Request::Dump("purchase".into()));
        assert!(dump.ok);
        assert_eq!(dump.lines.len(), 3); // header + 2 rows
        let mine = dispatch(
            &store,
            Request::Mine {
                table: "purchase".into(),
                max_lhs: 2,
                semantics: None,
            },
        );
        assert!(mine.ok, "{}", mine.message);
        assert!(mine.lines.iter().any(|l| l.contains("minimal FDs")));
        let mine_weak = dispatch(
            &store,
            Request::Mine {
                table: "purchase".into(),
                max_lhs: 2,
                semantics: Some(Semantics::Weak),
            },
        );
        assert!(mine_weak.ok, "{}", mine_weak.message);
        assert!(
            mine_weak.lines.iter().any(|l| l.contains("weak FDs")),
            "{:?}",
            mine_weak.lines
        );
        let closure = dispatch(
            &store,
            Request::Closure {
                table: "purchase".into(),
                columns: vec!["order_id".into(), "item".into(), "catalog".into()],
            },
        );
        assert!(closure.ok);
        assert!(closure.lines[0].starts_with("p-closure"));
        assert!(closure.lines[0].contains("price"));
        let norm = dispatch(
            &store,
            Request::Normalize {
                table: "purchase".into(),
                semantics: None,
            },
        );
        assert!(norm.ok, "{}", norm.message);
        assert!(norm.lines.iter().any(|l| l.contains("CREATE TABLE")));
        let norm_weak = dispatch(
            &store,
            Request::Normalize {
                table: "purchase".into(),
                semantics: Some(Semantics::Weak),
            },
        );
        assert!(norm_weak.ok, "{}", norm_weak.message);
        assert!(
            norm_weak.message.contains("weak semantics"),
            "{}",
            norm_weak.message
        );
        assert_eq!(norm.lines, norm_weak.lines, "design is semantics-invariant");
        let stats = dispatch(&store, Request::Stats);
        assert!(stats.lines.iter().any(|l| l.starts_with("stmt.admitted 2")));
        let mut sorted = stats.lines.clone();
        sorted.sort();
        assert_eq!(stats.lines, sorted, "STATS payload is name-sorted");
        let metrics = dispatch(&store, Request::Metrics);
        assert!(metrics.ok);
        let samples =
            crate::metrics::parse_exposition(&metrics.lines.join("\n")).expect("exposition parses");
        let admitted = samples
            .iter()
            .find(|s| s.name == "sqlnf_store" && s.label("name") == Some("stmt.admitted"))
            .expect("store counters exposed");
        assert_eq!(admitted.value, 2.0);
        assert!(
            samples
                .iter()
                .any(|s| s.name == "sqlnf_slow_request_ns" && s.label("stage") == Some("total")),
            "dispatches above recorded into the slow log"
        );
        let trace = dispatch(&store, Request::Trace(16));
        assert!(trace.ok);
        assert!(trace.lines.len() <= 16);
        let err = dispatch(&store, Request::Dump("nope".into()));
        assert!(!err.ok);
        assert!(err.message.contains("no such table"));
    }

    /// A pipelined burst (write N, then read N) comes back as N
    /// in-order replies, interleaves correctly with refusals, and the
    /// admissions survive recovery — the batch was durable at ack.
    #[test]
    fn pipelined_batch_round_trips_and_recovers() {
        let dir = std::env::temp_dir().join(format!("sqlnf_pipe_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let server = Server::start(ServeConfig {
            wal_dir: Some(dir.clone()),
            wal_shards: 2,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();
        let mut client = crate::client::Client::connect(addr).unwrap();
        client.expect_ok(DDL).unwrap();
        let stmts: Vec<String> = (0..10)
            .map(|i| {
                // Odd statements reuse the previous line's determinant
                // (order_id, item, catalog) with a different price.
                format!(
                    "INSERT INTO purchase VALUES ({}, 'pen', 'web', {});",
                    i / 2,
                    100 + i % 2
                )
            })
            .collect();
        let replies = client.send_batch(&stmts).unwrap();
        assert_eq!(replies.len(), 10);
        // The declared FD refuses every second insert — mid-batch, in
        // order, without derailing the rest of the pipeline.
        for (i, r) in replies.iter().enumerate() {
            assert_eq!(r.ok, i % 2 == 0, "reply {i}: {}", r.message);
        }
        let stats = client.expect_ok("STATS").unwrap();
        assert!(
            stats.lines.iter().any(|l| l == "stmt.admitted 6"),
            "{:?}",
            stats.lines
        );
        client.quit().unwrap();
        server.kill(); // no graceful fsync: the acks must already hold
        let reborn = Store::open(&dir, 0).unwrap();
        reborn
            .with_table("purchase", |st| assert_eq!(st.data().len(), 5))
            .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn server_round_trip_over_tcp() {
        let server = Server::start(ServeConfig::default()).unwrap();
        let addr = server.local_addr();
        let mut client = crate::client::Client::connect(addr).unwrap();
        let r = client.request("PING").unwrap();
        assert!(r.ok);
        assert_eq!(r.message, "pong");
        let r = client.request(DDL).unwrap();
        assert!(r.ok, "{}", r.message);
        let r = client
            .request("INSERT INTO purchase VALUES (1, 'Fitbit', NULL, 240);")
            .unwrap();
        assert!(r.ok, "{}", r.message);
        let r = client
            .request("INSERT INTO purchase VALUES (1, 'Fitbit', NULL, 999);")
            .unwrap();
        assert!(!r.ok, "constraint violation must be refused");
        let r = client.request("DUMP purchase").unwrap();
        assert_eq!(r.lines.len(), 2);
        client.quit().unwrap();
        server.shutdown().unwrap();
    }
}
