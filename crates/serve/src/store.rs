//! The shared store behind all sessions: named [`StoredTable`]s, each
//! behind its own `RwLock`, plus the group-commit durability plane.
//!
//! ## Locking discipline
//!
//! Five lock tiers, always acquired in this order (and released
//! before acquiring an earlier tier again):
//!
//! 1. the **snapshot** mutex — taken only by `snapshot()`, so at most
//!    one snapshot runs at a time; it owns the WAL generation number;
//! 2. the **registry** `RwLock` over the table map — writers only for
//!    `CREATE TABLE`; every other path takes it briefly as a reader to
//!    clone the table's `Arc` and drops it before touching the table;
//! 3. **table** `RwLock`s — sessions hold at most one; the snapshotter
//!    holds all of them as a reader, acquired in name order;
//! 4. **shard file** mutexes — holding one *is* being that shard's
//!    elected committer; the snapshotter holds all of them (in shard
//!    order) across the generation switch;
//! 5. **shard queue** mutexes — always innermost; held only long
//!    enough to push or drain frames.
//!
//! A writer enqueues its WAL frame *while still holding the table's
//! write lock* — which also assigns the frame its global epoch — so
//! epoch order equals application order; the actual write+fsync
//! happens later, in [`commit`](crate::commit), after the writer has
//! released every lock. The snapshotter drains every shard while
//! holding every table read lock, so no admitted statement can fall
//! between snapshot and log.

use crate::commit::{FsyncMode, GroupWal, Ticket};
use crate::metrics::{self, SlowEntry, SlowLog, Stage};
use crate::wal::{self, Wal, SNAPSHOT_FILE};
use crate::watch::{Subscription, WatchHub, DEFAULT_WATCH_QUEUE};
use sqlnf_core::prelude::*;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// Default LHS cap of the `MINE` verb.
pub const DEFAULT_MINE_LHS: usize = 3;

/// Why a request failed.
#[derive(Debug)]
pub enum ServeError {
    /// Rejected by the engine (parse error, constraint violation, …).
    Engine(EngineError),
    /// Malformed request or unknown verb target.
    Bad(String),
    /// Durability layer failure.
    Io(io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Engine(e) => write!(f, "{e}"),
            ServeError::Bad(m) => write!(f, "{m}"),
            ServeError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Monotone counters of the store's lifetime (mirrored into
/// `sqlnf-obs` under `serve.*` when the `obs` feature is compiled in).
#[derive(Debug, Default)]
pub struct StoreStats {
    /// Requests dispatched (every verb, including failures).
    pub requests: AtomicU64,
    /// Sessions accepted.
    pub sessions: AtomicU64,
    /// Statements admitted: applied, durable, and acknowledged.
    pub admitted: AtomicU64,
    /// Statements rejected.
    pub rejected: AtomicU64,
    /// Snapshots written.
    pub snapshots: AtomicU64,
}

impl StoreStats {
    /// Renders the counters as `name value` payload lines, sorted by
    /// name — `STATS` and `METRICS` output is stable across runs, so
    /// diffs (and tests diffing the two planes) are deterministic.
    pub fn lines(&self, tables: usize, wal_bytes: u64, wal_records: u64) -> Vec<String> {
        vec![
            format!("requests {}", self.requests.load(Ordering::Relaxed)),
            format!("sessions {}", self.sessions.load(Ordering::Relaxed)),
            format!("snapshots {}", self.snapshots.load(Ordering::Relaxed)),
            format!("stmt.admitted {}", self.admitted.load(Ordering::Relaxed)),
            format!("stmt.rejected {}", self.rejected.load(Ordering::Relaxed)),
            format!("tables {tables}"),
            format!("wal.bytes {wal_bytes}"),
            format!("wal.records {wal_records}"),
        ]
    }
}

type Registry = BTreeMap<String, Arc<RwLock<StoredTable>>>;

/// Fault-injection hooks for deterministic crash testing (used by
/// `sqlnf-harness`; all disabled by default and inert in production
/// paths).
#[derive(Debug)]
struct Hooks {
    /// After this many statements pass the admission gate, every
    /// further statement is refused with an injected I/O error — a
    /// deterministic crash point: regardless of thread interleaving,
    /// exactly this many statements are admitted (the compare-exchange
    /// in [`Store::admit_gate`] makes the check-and-count atomic).
    /// `u64::MAX` disables the fault.
    wal_fault_after: AtomicU64,
    /// Statements past the gate so far.
    appends: AtomicU64,
    /// Whether the armed fault has fired at least once.
    fault_fired: AtomicBool,
}

impl Default for Hooks {
    fn default() -> Self {
        Hooks {
            wal_fault_after: AtomicU64::new(u64::MAX),
            appends: AtomicU64::new(0),
            fault_fired: AtomicBool::new(false),
        }
    }
}

/// Durability tuning for [`Store::open_with`] /
/// [`Store::ephemeral_with`].
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Admitted statements between automatic snapshots (0 = only on
    /// shutdown).
    pub snapshot_every: u64,
    /// Number of WAL shards (tables are hashed across them).
    pub wal_shards: usize,
    /// How long an elected committer lingers collecting more frames
    /// before writing its batch.
    pub commit_window: Duration,
    /// Fsync discipline at the ack boundary.
    pub fsync: FsyncMode,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            snapshot_every: 0,
            wal_shards: 1,
            commit_window: Duration::ZERO,
            fsync: FsyncMode::Batch,
        }
    }
}

/// Statements applied and enqueued but not yet acknowledged: the
/// tickets a session must redeem (via [`Store::commit_pending`])
/// before replying to their requests.
#[derive(Debug, Default)]
pub struct Pending {
    tickets: Vec<Ticket>,
}

impl Pending {
    /// Whether there is nothing to wait for.
    pub fn is_empty(&self) -> bool {
        self.tickets.is_empty()
    }

    /// Tickets accumulated so far (callers use the delta around an
    /// enqueue to attribute tickets to requests).
    pub fn len(&self) -> usize {
        self.tickets.len()
    }
}

/// The shared store: the table registry plus the durability layer.
#[derive(Debug)]
pub struct Store {
    tables: RwLock<Registry>,
    wal: GroupWal,
    dir: Option<PathBuf>,
    /// Serializes snapshots; the guarded value is the generation of
    /// the live WAL (tier 1 of the locking discipline).
    generation: Mutex<u64>,
    /// Admitted statements between automatic snapshots (0 = only on
    /// shutdown).
    snapshot_every: u64,
    since_snapshot: AtomicU64,
    /// Test-only fault/observation hooks.
    hooks: Hooks,
    /// Lifetime counters.
    pub stats: StoreStats,
    /// Worst-request log (see [`crate::metrics`]).
    slow: SlowLog,
    /// Process-unique tag stamped into every flight-recorder event this
    /// store emits, so tests sharing the process-global recorder can
    /// filter their own events out of the stream.
    nonce: u64,
    /// The WATCH subscription hub (see [`crate::watch`]): a thread
    /// shadowing committed history with incremental miners, fed from
    /// the commit plane post-durability.
    watch: WatchHub,
}

/// Source of store nonces (flight events carry them as values).
static NONCE: AtomicU64 = AtomicU64::new(1);

impl Store {
    /// An in-memory store without durability.
    pub fn ephemeral() -> Store {
        Store::ephemeral_with(StoreOptions::default())
    }

    /// An in-memory store with explicit commit-plane tuning (shard
    /// count and commit window still shape batching even without
    /// backing files).
    pub fn ephemeral_with(opts: StoreOptions) -> Store {
        let wal = GroupWal::ephemeral(opts.wal_shards, opts.commit_window, opts.fsync);
        let watch = WatchHub::spawn(Vec::new(), wal.epoch_next(), DEFAULT_WATCH_QUEUE);
        wal.set_listener(watch.sender());
        Store {
            tables: RwLock::new(BTreeMap::new()),
            wal,
            dir: None,
            generation: Mutex::new(0),
            snapshot_every: 0,
            since_snapshot: AtomicU64::new(0),
            hooks: Hooks::default(),
            stats: StoreStats::default(),
            slow: SlowLog::default(),
            nonce: NONCE.fetch_add(1, Ordering::Relaxed),
            watch,
        }
    }

    /// Opens a durable store in `dir` with default options; see
    /// [`open_with`](Self::open_with).
    pub fn open(dir: &Path, snapshot_every: u64) -> Result<Store, ServeError> {
        Store::open_with(
            dir,
            StoreOptions {
                snapshot_every,
                ..StoreOptions::default()
            },
        )
    }

    /// Opens a durable store in `dir`, recovering state by applying the
    /// snapshot (if any) and then replaying the snapshot generation's
    /// shard logs, merged by epoch — the longest contiguous epoch run
    /// from the snapshot's base is exactly the acknowledged history.
    /// Logs of any other generation are debris of a crash mid-snapshot
    /// — older ones are fully contained in the snapshot, newer ones
    /// were never written to — and are deleted, not replayed, so
    /// recovery never applies a statement twice. The shard count may
    /// differ from the one the logs were written under: recovery reads
    /// whatever shards exist on disk.
    pub fn open_with(dir: &Path, opts: StoreOptions) -> Result<Store, ServeError> {
        std::fs::create_dir_all(dir)?;
        let snap_path = dir.join(SNAPSHOT_FILE);
        let (generation, epoch_base, script) = match std::fs::read_to_string(&snap_path) {
            Ok(image) => {
                let (generation, epoch_base, body) = wal::parse_snapshot(&image);
                (generation, epoch_base, body.to_owned())
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => (0, 1, String::new()),
            Err(e) => return Err(e.into()),
        };
        wal::cleanup_stale(dir, generation)?;
        // GroupWal::recover truncates torn tails and epoch-gapped
        // suffixes, so replay-then-append agree on the logs' contents.
        let (gwal, replayed) = GroupWal::recover(
            dir,
            generation,
            epoch_base,
            opts.wal_shards,
            opts.commit_window,
            opts.fsync,
        )?;
        // Seed the WATCH hub's shadow state with the recovered history
        // so a subscriber's baseline matches the live registry; the
        // cursor starts at the first epoch the resumed store can
        // commit.
        let mut preamble = vec![script.clone()];
        preamble.extend(replayed.iter().cloned());
        let watch = WatchHub::spawn(preamble, gwal.epoch_next(), DEFAULT_WATCH_QUEUE);
        gwal.set_listener(watch.sender());
        let store = Store {
            tables: RwLock::new(BTreeMap::new()),
            wal: gwal,
            dir: Some(dir.to_path_buf()),
            generation: Mutex::new(generation),
            snapshot_every: opts.snapshot_every,
            since_snapshot: AtomicU64::new(0),
            hooks: Hooks::default(),
            stats: StoreStats::default(),
            slow: SlowLog::default(),
            nonce: NONCE.fetch_add(1, Ordering::Relaxed),
            watch,
        };
        store.apply_script_unlogged(&script)?;
        for stmt in &replayed {
            store.apply_script_unlogged(stmt)?;
        }
        Ok(store)
    }

    /// Applies a recovery script directly to the registry, bypassing
    /// the WAL.
    fn apply_script_unlogged(&self, src: &str) -> Result<(), ServeError> {
        for stmt in parse_script(src).map_err(EngineError::from)? {
            match stmt {
                Statement::CreateTable { schema, sigma } => {
                    let name = schema.name().to_owned();
                    let mut reg = self.tables.write().unwrap();
                    if reg.contains_key(&name) {
                        return Err(EngineError::DuplicateTable(name).into());
                    }
                    reg.insert(name, Arc::new(RwLock::new(StoredTable::new(schema, sigma))));
                }
                Statement::Insert { table, rows } => {
                    let arc = self.table_arc(&table)?;
                    let mut st = arc.write().unwrap();
                    for row in rows {
                        st.insert(row).map_err(ServeError::Engine)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn table_arc(&self, name: &str) -> Result<Arc<RwLock<StoredTable>>, ServeError> {
        let reg = {
            let _wait = sqlnf_obs::span!("serve.lock_wait.registry");
            metrics::timed(Stage::LockRegistry, || self.tables.read().unwrap())
        };
        reg.get(name)
            .cloned()
            .ok_or_else(|| EngineError::NoSuchTable(name.to_owned()).into())
    }

    /// This store's flight-event tag (see the `nonce` field).
    pub fn nonce(&self) -> u64 {
        self.nonce
    }

    /// The worst-request log (requests recorded by the server's
    /// dispatch loop).
    pub fn slow_log(&self) -> &SlowLog {
        &self.slow
    }

    /// The retained worst requests, worst first.
    pub fn slow_requests(&self) -> Vec<SlowEntry> {
        self.slow.entries()
    }

    /// Table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().unwrap().keys().cloned().collect()
    }

    /// Runs `f` on a read-locked table.
    pub fn with_table<T>(
        &self,
        name: &str,
        f: impl FnOnce(&StoredTable) -> T,
    ) -> Result<T, ServeError> {
        let arc = self.table_arc(name)?;
        let st = {
            // Wait time only: the span must not cover `f` itself.
            let _wait = sqlnf_obs::span!("serve.lock_wait.table");
            metrics::timed(Stage::LockTable, || arc.read().unwrap())
        };
        Ok(f(&st))
    }

    /// Subscribe to live discovery events; `filter` limits the stream
    /// to one table (`None` = every table). Events begin at the
    /// store's current committed state — the hub mines a silent
    /// baseline at registration and streams only subsequent diffs.
    pub fn watch(&self, filter: Option<String>) -> Subscription {
        self.watch.subscribe(filter)
    }

    /// [`watch`](Self::watch) with the weak plane opt-in: a `weak`
    /// subscriber additionally receives `wfd:` fact events.
    pub fn watch_opts(&self, filter: Option<String>, weak: bool) -> Subscription {
        self.watch.subscribe_opts(filter, weak)
    }

    /// Block until the WATCH hub has processed every commit
    /// notification sent so far (deterministic fence for tests and the
    /// harness).
    pub fn watch_barrier(&self) {
        self.watch.barrier();
    }

    /// Parses and executes a SQL script, enqueuing each applied
    /// statement's canonical rendering for group commit. Statements
    /// apply in order; the first rejection stops the script (earlier
    /// statements stay applied — the wire protocol's unit of atomicity
    /// is the statement, not the script). Returns the number of
    /// statements applied; their tickets accumulate in `pending` and
    /// the caller must redeem them with
    /// [`commit_pending`](Self::commit_pending) before acknowledging
    /// the request — the split is what lets a session stack several
    /// pipelined requests into one commit batch.
    pub fn execute_sql_enqueue(
        &self,
        src: &str,
        pending: &mut Pending,
    ) -> Result<usize, ServeError> {
        let parsed = {
            let _span = sqlnf_obs::span!("serve.parse");
            metrics::timed(Stage::Parse, || parse_script(src))
        };
        let stmts = parsed.map_err(|e| {
            self.stats.rejected.fetch_add(1, Ordering::Relaxed);
            sqlnf_obs::count!("serve.stmt.rejected");
            EngineError::from(e)
        })?;
        let mut applied = 0;
        for stmt in stmts {
            match self.apply_logged(stmt) {
                Ok(ticket) => {
                    applied += 1;
                    pending.tickets.push(ticket);
                }
                Err(e) => {
                    self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                    sqlnf_obs::count!("serve.stmt.rejected");
                    return Err(e);
                }
            }
        }
        Ok(applied)
    }

    /// Parks until every pending statement is durable, then counts
    /// and announces the per-statement outcomes. A statement is
    /// *admitted* — counted, flight-recorded, snapshot-triggering —
    /// only here, after its frame survived the batch fsync and the
    /// cross-shard watermark covers its epoch; a statement whose own
    /// wait fails is *rejected*. Every ticket is redeemed
    /// individually: a lost batch on one shard leaves statements
    /// already durable elsewhere admitted, so the admission counter
    /// always agrees with the oplog. Returns one outcome per ticket,
    /// in enqueue order, plus the aftermath of the commit (the
    /// auto-snapshot attempt) — callers replying per request map the
    /// outcomes back onto replies and treat the aftermath as a
    /// session-level failure, not a statement rejection. Callers must
    /// hold no locks: a wait may elect this thread committer and
    /// perform the batch I/O itself.
    pub fn commit_pending_each(
        &self,
        pending: &mut Pending,
    ) -> (Vec<io::Result<()>>, Result<(), ServeError>) {
        if pending.tickets.is_empty() {
            return (Vec::new(), Ok(()));
        }
        let tickets = std::mem::take(&mut pending.tickets);
        let outcomes: Vec<io::Result<()>> = {
            let _span = sqlnf_obs::span!("serve.commit.wait");
            tickets.into_iter().map(|t| self.wal.wait(t)).collect()
        };
        let admitted = outcomes.iter().filter(|o| o.is_ok()).count() as u64;
        let rejected = outcomes.len() as u64 - admitted;
        if admitted > 0 {
            self.stats.admitted.fetch_add(admitted, Ordering::Relaxed);
            sqlnf_obs::count!("serve.stmt.admitted", admitted);
            for _ in 0..admitted {
                sqlnf_obs::event!("serve.stmt.admitted", self.nonce);
            }
        }
        if rejected > 0 {
            self.stats.rejected.fetch_add(rejected, Ordering::Relaxed);
            sqlnf_obs::count!("serve.stmt.rejected", rejected);
        }
        let aftermath = self.maybe_snapshot(admitted);
        (outcomes, aftermath)
    }

    /// [`commit_pending_each`](Self::commit_pending_each) collapsed
    /// for callers that treat the pending set as one unit (CLI,
    /// tests): the first per-ticket failure, or else the aftermath
    /// error, is the result.
    pub fn commit_pending(&self, pending: &mut Pending) -> Result<(), ServeError> {
        let (outcomes, aftermath) = self.commit_pending_each(pending);
        for outcome in outcomes {
            outcome?;
        }
        aftermath
    }

    /// Parses, executes, and makes durable a SQL script in one call
    /// (the unpipelined path: CLI, tests, recovery checks). Returns
    /// the number of statements applied.
    pub fn execute_sql(&self, src: &str) -> Result<usize, ServeError> {
        let mut pending = Pending::default();
        let res = self.execute_sql_enqueue(src, &mut pending);
        // Ack earlier statements even when a later one was refused —
        // they applied, so they must become durable.
        self.commit_pending(&mut pending)?;
        res
    }

    /// Applies one statement under the locking discipline, enqueuing
    /// its canonical rendering for commit while the write lock is
    /// still held (so epoch order equals application order).
    fn apply_logged(&self, stmt: Statement) -> Result<Ticket, ServeError> {
        match stmt {
            Statement::CreateTable { schema, sigma } => {
                let rendered = render_create_table(&schema, &sigma);
                let name = schema.name().to_owned();
                let mut reg = {
                    let _wait = sqlnf_obs::span!("serve.lock_wait.registry");
                    metrics::timed(Stage::LockRegistry, || self.tables.write().unwrap())
                };
                if reg.contains_key(&name) {
                    return Err(EngineError::DuplicateTable(name).into());
                }
                // Gate and enqueue before publishing: if the commit
                // plane refuses, the statement is refused and the
                // registry is unchanged.
                self.admit_gate()?;
                let ticket = self.wal.enqueue(&name, rendered)?;
                reg.insert(name, Arc::new(RwLock::new(StoredTable::new(schema, sigma))));
                Ok(ticket)
            }
            Statement::Insert { table, rows } => {
                let arc = self.table_arc(&table)?;
                // How long concurrent writers queue on one table — the
                // suspected cause of serve_4x500 throughput trailing
                // serve_1x500. The span ends at acquisition.
                let mut st = {
                    let _wait = sqlnf_obs::span!("serve.lock_wait.table");
                    metrics::timed(Stage::LockTable, || arc.write().unwrap())
                };
                // Multi-row INSERTs are atomic: roll back this
                // statement's rows if a later one is rejected.
                let base = st.data().len();
                for (i, row) in rows.iter().enumerate() {
                    if let Err(e) = st.insert(row.clone()) {
                        for r in (base..base + i).rev() {
                            st.delete(r).expect("rolling back admitted rows");
                        }
                        return Err(e.into());
                    }
                }
                let rendered = render_insert(&table, &rows);
                let enqueued = self
                    .admit_gate()
                    .and_then(|()| self.wal.enqueue(&table, rendered).map_err(ServeError::from));
                match enqueued {
                    Ok(ticket) => Ok(ticket),
                    Err(e) => {
                        for r in (base..base + rows.len()).rev() {
                            st.delete(r).expect("rolling back admitted rows");
                        }
                        Err(e)
                    }
                }
            }
        }
    }

    /// The admission gate: atomically checks and spends one unit of
    /// the fault hook's budget. The compare-exchange makes "first k
    /// pass, the rest fail" exact under any interleaving — the crash
    /// pin counts *statements admitted*, not frames fsynced, so
    /// [`inject_wal_fault_after`](Self::inject_wal_fault_after) keeps
    /// its meaning under batched commits.
    fn admit_gate(&self) -> Result<(), ServeError> {
        loop {
            let budget = self.hooks.wal_fault_after.load(Ordering::Relaxed);
            let done = self.hooks.appends.load(Ordering::Relaxed);
            if done >= budget {
                self.hooks.fault_fired.store(true, Ordering::SeqCst);
                return Err(io::Error::other("injected WAL fault").into());
            }
            if self
                .hooks
                .appends
                .compare_exchange(done, done + 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return Ok(());
            }
        }
    }

    /// Test hook: start recording every committed statement (canonical
    /// rendering, epoch order). Used by the fault-injection harness as
    /// the ground-truth serial history for differential recovery
    /// checks.
    pub fn enable_oplog(&self) {
        self.wal.enable_oplog();
    }

    /// Test hook: the statements committed since
    /// [`enable_oplog`](Self::enable_oplog), in epoch order.
    pub fn oplog(&self) -> Vec<String> {
        self.wal.oplog()
    }

    /// Test hook: after `appends` further admissions, every statement
    /// is refused with an injected I/O error. Statements admitted
    /// before the fault stay durable; later ones are refused and rolled
    /// back — a deterministic crash point independent of thread
    /// interleaving.
    pub fn inject_wal_fault_after(&self, appends: u64) {
        let done = self.hooks.appends.load(Ordering::Relaxed);
        self.hooks
            .wal_fault_after
            .store(done.saturating_add(appends), Ordering::Relaxed);
    }

    /// Test hook: whether the armed WAL fault has fired.
    pub fn wal_fault_fired(&self) -> bool {
        self.hooks.fault_fired.load(Ordering::SeqCst)
    }

    /// Test hook: make the next commit batch fail between its `write`
    /// and its `fsync`, proving undurable waiters are never acked.
    pub fn inject_fsync_fault_once(&self) {
        self.wal.inject_fsync_fault_once();
    }

    /// Test hook: like
    /// [`inject_fsync_fault_once`](Self::inject_fsync_fault_once),
    /// but only the named WAL shard's next batch fails — for
    /// deterministic partial-commit-failure interleavings.
    pub fn inject_fsync_fault_on(&self, shard: usize) {
        self.wal.inject_fsync_fault_on(shard);
    }

    /// `(bytes, records)` across all WAL shards.
    pub fn wal_size(&self) -> (u64, u64) {
        self.wal.size()
    }

    /// Counts `applied` statements toward the auto-snapshot threshold.
    /// The compare-exchange elects exactly one thread per crossing: a
    /// loser's statements stay counted and re-arm the next trigger, so
    /// concurrent workers never pile into `snapshot()` together.
    fn maybe_snapshot(&self, applied: u64) -> Result<(), ServeError> {
        if self.snapshot_every == 0 || self.dir.is_none() || applied == 0 {
            return Ok(());
        }
        let total = self.since_snapshot.fetch_add(applied, Ordering::Relaxed) + applied;
        if total >= self.snapshot_every
            && self
                .since_snapshot
                .compare_exchange(total, 0, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            self.snapshot()?;
        }
        Ok(())
    }

    /// Renders the whole store as a SQL script that recreates it (the
    /// snapshot format — DDL in registry order, then each table's
    /// rows). Callers must not hold any table lock.
    pub fn export_script(&self) -> String {
        let arcs: Vec<(String, Arc<RwLock<StoredTable>>)> = {
            let reg = self.tables.read().unwrap();
            reg.iter().map(|(n, a)| (n.clone(), a.clone())).collect()
        };
        let mut out = String::new();
        for (name, arc) in &arcs {
            let st = arc.read().unwrap();
            out.push_str(&render_create_table(st.data().schema(), st.sigma()));
            out.push('\n');
            if !st.data().is_empty() {
                out.push_str(&render_insert(name, st.data().rows()));
                out.push('\n');
            }
        }
        out
    }

    /// Writes a snapshot and retires the current WAL generation by
    /// switching every shard to the next one atomically. All table
    /// read locks are held throughout — which quiesces the commit
    /// plane, since enqueuing requires a table write lock — and every
    /// shard is drained into its old log before the switch, so an
    /// admitted statement is always in the snapshot or the live logs.
    /// The on-disk order makes every crash point recoverable: the
    /// generation-`g+1` snapshot (whose header records the epoch base)
    /// and its empty shard logs are written and made durable (file
    /// fsync, rename, directory fsync) *before* the generation-`g`
    /// logs are deleted — a leftover old-generation log is therefore
    /// always fully contained in the snapshot, and `open()` discards
    /// it instead of replaying it twice.
    pub fn snapshot(&self) -> Result<(), ServeError> {
        let Some(dir) = self.dir.as_ref() else {
            return Ok(());
        };
        let _span = sqlnf_obs::span!("serve.snapshot");
        // Tier 1: one snapshot at a time; the guard owns the live
        // WAL's generation.
        let mut generation = {
            let _wait = sqlnf_obs::span!("serve.lock_wait.snapshot");
            metrics::timed(Stage::LockSnapshot, || self.generation.lock().unwrap())
        };
        let next = *generation + 1;
        let reg = self.tables.read().unwrap();
        let guards: Vec<(&String, std::sync::RwLockReadGuard<'_, StoredTable>)> = reg
            .iter()
            .map(|(name, arc)| (name, arc.read().unwrap()))
            .collect();
        // Tier 4, all shards: drain straggler frames into the old
        // generation (their writers are parked in wait(), not holding
        // locks) and keep the file locks across the switch.
        let mut files = self.wal.lock_files();
        self.wal.drain_all(&mut files);
        let epoch_base = self.wal.epoch_next();
        let mut script = wal::snapshot_header(next, epoch_base);
        for (name, st) in &guards {
            script.push_str(&render_create_table(st.data().schema(), st.sigma()));
            script.push('\n');
            if !st.data().is_empty() {
                script.push_str(&render_insert(name, st.data().rows()));
                script.push('\n');
            }
        }
        let tmp = wal::snapshot_tmp_path(dir, next);
        {
            use std::io::Write as _;
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(script.as_bytes())?;
            let _span = sqlnf_obs::span!("serve.snapshot.fsync");
            metrics::timed(Stage::WalFsync, || f.sync_data())?;
        }
        // The next generation's logs must exist before the snapshot
        // naming them is published, and both must be durable before
        // any statement is appended to the new logs — otherwise a
        // crash could recover the old snapshot yet discard a new log.
        let mut fresh = Vec::with_capacity(files.len());
        for shard in 0..files.len() as u64 {
            fresh.push(Wal::open(dir, next, shard)?);
        }
        std::fs::rename(&tmp, dir.join(SNAPSHOT_FILE))?;
        wal::sync_dir(dir)?;
        let mut removed = false;
        for (guard, new) in files.iter_mut().zip(fresh) {
            if let Some(old) = (**guard).replace(new) {
                // Already captured by the snapshot; removal is cleanup,
                // not correctness — open() deletes leftovers.
                let _ = std::fs::remove_file(old.path());
                removed = true;
            }
        }
        if removed {
            let _ = wal::sync_dir(dir);
        }
        drop(files);
        self.since_snapshot.store(0, Ordering::Relaxed);
        *generation = next;
        self.stats.snapshots.fetch_add(1, Ordering::Relaxed);
        sqlnf_obs::count!("serve.snapshots");
        Ok(())
    }

    /// Fsyncs every WAL shard (graceful shutdown path).
    pub fn sync(&self) -> Result<(), ServeError> {
        self.wal.sync_all()?;
        Ok(())
    }

    /// Full revalidation: every stored instance satisfies its declared
    /// constraint set (used by tests to audit concurrent admission).
    pub fn satisfies_all_constraints(&self) -> bool {
        let names = self.table_names();
        names.iter().all(|name| {
            self.with_table(name, |st| satisfies_all(st.data(), st.sigma()))
                .unwrap_or(false)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DDL: &str = "CREATE TABLE purchase (
        order_id INT NOT NULL,
        item     TEXT NOT NULL,
        catalog  TEXT,
        price    INT NOT NULL,
        CONSTRAINT line CERTAIN FD (item, catalog) -> (price)
    );";

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sqlnf_store_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn execute_admits_and_rejects() {
        let store = Store::ephemeral();
        store.execute_sql(DDL).unwrap();
        store
            .execute_sql("INSERT INTO purchase VALUES (1, 'Fitbit', 'Amazon', 240);")
            .unwrap();
        let err = store
            .execute_sql("INSERT INTO purchase VALUES (2, 'Fitbit', 'Amazon', 999);")
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::Engine(EngineError::ConstraintViolation { .. })
        ));
        assert_eq!(store.stats.admitted.load(Ordering::Relaxed), 2);
        assert_eq!(store.stats.rejected.load(Ordering::Relaxed), 1);
        assert!(store.satisfies_all_constraints());
    }

    #[test]
    fn multi_row_insert_is_atomic() {
        let store = Store::ephemeral();
        store.execute_sql(DDL).unwrap();
        // Second row violates the c-FD against the first: both roll back.
        let err = store
            .execute_sql("INSERT INTO purchase VALUES (1, 'X', 'A', 10), (2, 'X', 'A', 20);")
            .unwrap_err();
        assert!(matches!(err, ServeError::Engine(_)));
        store
            .with_table("purchase", |st| assert_eq!(st.data().len(), 0))
            .unwrap();
    }

    #[test]
    fn recovery_replays_wal_and_snapshot() {
        let dir = tmp_dir("recover");
        {
            let store = Store::open(&dir, 0).unwrap();
            store.execute_sql(DDL).unwrap();
            store
                .execute_sql("INSERT INTO purchase VALUES (1, 'Fitbit', NULL, 240);")
                .unwrap();
            // No snapshot, no graceful close: state lives in the WAL only.
        }
        let reborn = Store::open(&dir, 0).unwrap();
        reborn
            .with_table("purchase", |st| assert_eq!(st.data().len(), 1))
            .unwrap();
        // Snapshot, append more, recover again: both sources compose.
        reborn.snapshot().unwrap();
        assert_eq!(reborn.wal_size().1, 0);
        reborn
            .execute_sql("INSERT INTO purchase VALUES (2, 'Doll', 'Kingtoys', 25);")
            .unwrap();
        let script = reborn.export_script();
        drop(reborn);
        let third = Store::open(&dir, 0).unwrap();
        assert_eq!(third.export_script(), script);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A store written under several shards recovers identically no
    /// matter how many shards the reopening configuration asks for —
    /// the epoch merge, not the file layout, defines the history.
    #[test]
    fn sharded_history_recovers_under_any_shard_count() {
        let dir = tmp_dir("reshard");
        let opts = StoreOptions {
            wal_shards: 4,
            ..StoreOptions::default()
        };
        let store = Store::open_with(&dir, opts).unwrap();
        store.execute_sql(DDL).unwrap();
        store
            .execute_sql("CREATE TABLE other (x INT NOT NULL, CONSTRAINT k CERTAIN KEY (x));")
            .unwrap();
        for i in 0..10 {
            store
                .execute_sql(&format!(
                    "INSERT INTO purchase VALUES ({i}, 'i{i}', NULL, {i});"
                ))
                .unwrap();
            store
                .execute_sql(&format!("INSERT INTO other VALUES ({i});"))
                .unwrap();
        }
        let expected = store.export_script();
        drop(store);
        // The two tables hash to shards independently; at least the
        // frames exist across the generation's shard files.
        assert!(!wal::shard_logs(&dir, 0).unwrap().is_empty());
        for shards in [1, 2, 8] {
            let reborn = Store::open_with(
                &dir,
                StoreOptions {
                    wal_shards: shards,
                    ..StoreOptions::default()
                },
            )
            .unwrap();
            assert_eq!(reborn.export_script(), expected, "shards={shards}");
            assert!(reborn.satisfies_all_constraints());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The crash window the generation scheme closes: the snapshot is
    /// renamed into place but the previous generation's log survives
    /// (power loss before the retired log was deleted). Replaying that
    /// log on top of the snapshot would double every statement — or
    /// refuse to start on `DuplicateTable` — so recovery must discard
    /// it instead.
    #[test]
    fn leftover_old_generation_wal_is_not_replayed() {
        let dir = tmp_dir("stale");
        let store = Store::open(&dir, 0).unwrap();
        store.execute_sql(DDL).unwrap();
        store
            .execute_sql("INSERT INTO purchase VALUES (1, 'Fitbit', NULL, 240);")
            .unwrap();
        let old_log = std::fs::read(wal::wal_path(&dir, 0, 0)).unwrap();
        store.snapshot().unwrap();
        store
            .execute_sql("INSERT INTO purchase VALUES (2, 'Doll', 'Kingtoys', 25);")
            .unwrap();
        let expected = store.export_script();
        drop(store);
        // Resurrect the generation-0 log next to the generation-1
        // snapshot + log, as if the final delete never hit the disk.
        std::fs::write(wal::wal_path(&dir, 0, 0), &old_log).unwrap();
        let reborn = Store::open(&dir, 0).unwrap();
        assert_eq!(reborn.export_script(), expected);
        assert!(reborn.satisfies_all_constraints());
        assert!(!wal::wal_path(&dir, 0, 0).exists(), "stale log cleaned up");
        drop(reborn);
        // Crash *before* the rename instead: an empty next-generation
        // log and a temp snapshot are debris, not state.
        std::fs::write(wal::wal_path(&dir, 9, 0), b"").unwrap();
        std::fs::write(wal::snapshot_tmp_path(&dir, 9), b"junk").unwrap();
        let again = Store::open(&dir, 0).unwrap();
        assert_eq!(again.export_script(), expected);
        assert!(!wal::wal_path(&dir, 9, 0).exists());
        assert!(!wal::snapshot_tmp_path(&dir, 9).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Hammer the auto-snapshot trigger from several writers at once:
    /// snapshots must serialize (no interleaved writers corrupting one
    /// file) and recovery must reproduce the exact store.
    #[test]
    fn concurrent_snapshot_triggers_stay_consistent() {
        let dir = tmp_dir("conc");
        let store = Arc::new(Store::open(&dir, 1).unwrap());
        store.execute_sql(DDL).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|k| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..10 {
                        let id = k * 100 + i;
                        store
                            .execute_sql(&format!(
                                "INSERT INTO purchase VALUES ({id}, 'i{id}', NULL, {id});"
                            ))
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(store.stats.snapshots.load(Ordering::Relaxed) >= 1);
        let expected = store.export_script();
        drop(store);
        let reborn = Store::open(&dir, 0).unwrap();
        assert_eq!(reborn.export_script(), expected);
        assert!(reborn.satisfies_all_constraints());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The harness hooks: the oplog mirrors the admitted history in
    /// order, and an armed fault refuses (and rolls back) every
    /// statement past its budget, deterministically — the budget
    /// counts *statements admitted*, not frames fsynced, so batching
    /// cannot shift the crash point.
    #[test]
    fn oplog_and_wal_fault_hooks() {
        let dir = tmp_dir("hooks");
        let store = Store::open(&dir, 0).unwrap();
        store.enable_oplog();
        store.execute_sql(DDL).unwrap();
        store
            .execute_sql("INSERT INTO purchase VALUES (1, 'A', NULL, 1);")
            .unwrap();
        // DDL + one insert so far; allow exactly one more admission.
        store.inject_wal_fault_after(1);
        store
            .execute_sql("INSERT INTO purchase VALUES (2, 'B', NULL, 2);")
            .unwrap();
        assert!(!store.wal_fault_fired());
        let err = store
            .execute_sql("INSERT INTO purchase VALUES (3, 'C', NULL, 3);")
            .unwrap_err();
        assert!(matches!(err, ServeError::Io(_)), "{err}");
        assert!(store.wal_fault_fired());
        // The refused insert was rolled back, not half-applied.
        store
            .with_table("purchase", |st| assert_eq!(st.data().len(), 2))
            .unwrap();
        let oplog = store.oplog();
        assert_eq!(oplog.len(), 3, "{oplog:?}");
        assert!(oplog[0].starts_with("CREATE TABLE"));
        // The oplog replayed through a fresh engine reproduces the
        // recovered store exactly (the harness's differential check).
        let mut reference = Database::new();
        for stmt in &oplog {
            reference.run_script(stmt).unwrap();
        }
        drop(store);
        let reopened = Store::open(&dir, 0).unwrap();
        assert_eq!(reopened.export_script(), reference.export_script());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The crash-during-commit window: the batch is written but the
    /// fsync fails. The waiter must get an error, the admission
    /// counter must not move, the oplog must not record the statement,
    /// and recovery must come back without it.
    #[test]
    fn crash_between_write_and_fsync_never_acks() {
        let dir = tmp_dir("fsync_fault");
        let store = Store::open(&dir, 0).unwrap();
        store.enable_oplog();
        store.execute_sql(DDL).unwrap();
        store
            .execute_sql("INSERT INTO purchase VALUES (1, 'A', NULL, 1);")
            .unwrap();
        store.inject_fsync_fault_once();
        let err = store
            .execute_sql("INSERT INTO purchase VALUES (2, 'B', NULL, 2);")
            .unwrap_err();
        assert!(matches!(err, ServeError::Io(_)), "{err}");
        assert_eq!(store.stats.admitted.load(Ordering::Relaxed), 2);
        assert_eq!(store.oplog().len(), 2, "undurable frame must not be acked");
        drop(store);
        let reborn = Store::open(&dir, 0).unwrap();
        reborn
            .with_table("purchase", |st| assert_eq!(st.data().len(), 1))
            .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A partial commit failure — one shard loses its batch while
    /// another commits — must be accounted per ticket: the statement
    /// durable on the healthy shard is admitted (it is in the oplog,
    /// and recovery replays it), only the lost statement is rejected,
    /// and the admission counter agrees with the oplog throughout.
    #[test]
    fn partial_commit_failure_counts_per_ticket() {
        let dir = tmp_dir("partial");
        let opts = StoreOptions {
            wal_shards: 2,
            ..StoreOptions::default()
        };
        let store = Store::open_with(&dir, opts.clone()).unwrap();
        store.enable_oplog();
        // Two tables that hash to the two distinct shards.
        let mut names: [Option<String>; 2] = [None, None];
        for i in 0.. {
            let name = format!("t{i}");
            let shard = store.wal.shard_for(&name);
            if names[shard].is_none() {
                names[shard] = Some(name);
                if names.iter().all(|n| n.is_some()) {
                    break;
                }
            }
        }
        let (on_a, on_b) = (names[0].take().unwrap(), names[1].take().unwrap());
        for t in [&on_a, &on_b] {
            store
                .execute_sql(&format!(
                    "CREATE TABLE {t} (x INT NOT NULL, CONSTRAINT k CERTAIN KEY (x));"
                ))
                .unwrap();
        }
        // One pipelined pending set spanning both shards; shard 1
        // (the *later* epoch's shard) loses its batch, so the earlier
        // statement commits before the loss poisons the floor.
        let mut pending = Pending::default();
        store
            .execute_sql_enqueue(&format!("INSERT INTO {on_a} VALUES (1);"), &mut pending)
            .unwrap();
        store
            .execute_sql_enqueue(&format!("INSERT INTO {on_b} VALUES (1);"), &mut pending)
            .unwrap();
        assert_eq!(pending.len(), 2);
        store.inject_fsync_fault_on(1);
        let (outcomes, aftermath) = store.commit_pending_each(&mut pending);
        aftermath.unwrap();
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes[0].is_ok(), "healthy shard's statement is admitted");
        assert!(outcomes[1].is_err(), "only the lost statement is rejected");
        // 2 DDL + the healthy insert; the counter matches the oplog.
        assert_eq!(store.stats.admitted.load(Ordering::Relaxed), 3);
        assert_eq!(store.stats.rejected.load(Ordering::Relaxed), 1);
        assert_eq!(store.oplog().len(), 3);
        drop(store);
        let reborn = Store::open_with(&dir, opts).unwrap();
        reborn
            .with_table(&on_a, |st| assert_eq!(st.data().len(), 1))
            .unwrap();
        reborn
            .with_table(&on_b, |st| assert_eq!(st.data().len(), 0))
            .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn auto_snapshot_truncates_wal() {
        let dir = tmp_dir("auto");
        let store = Store::open(&dir, 2).unwrap();
        store.execute_sql(DDL).unwrap();
        store
            .execute_sql("INSERT INTO purchase VALUES (1, 'A', NULL, 1);")
            .unwrap();
        // Threshold reached: snapshot happened, WAL empty.
        assert_eq!(store.wal_size().1, 0);
        assert_eq!(store.stats.snapshots.load(Ordering::Relaxed), 1);
        assert!(dir.join(SNAPSHOT_FILE).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
