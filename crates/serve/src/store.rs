//! The shared store behind all sessions: named [`StoredTable`]s, each
//! behind its own `RwLock`, plus the WAL.
//!
//! ## Locking discipline
//!
//! Four lock tiers, always acquired in this order (and released
//! before acquiring an earlier tier again):
//!
//! 1. the **snapshot** mutex — taken only by `snapshot()`, so at most
//!    one snapshot runs at a time; it owns the WAL generation number;
//! 2. the **registry** `RwLock` over the table map — writers only for
//!    `CREATE TABLE`; every other path takes it briefly as a reader to
//!    clone the table's `Arc` and drops it before touching the table;
//! 3. **table** `RwLock`s — sessions hold at most one; the snapshotter
//!    holds all of them as a reader, acquired in name order;
//! 4. the **WAL** mutex — always innermost.
//!
//! A writer appends to the WAL *while still holding the table's write
//! lock*, so per-table WAL order equals application order; the
//! snapshotter switches to the next WAL generation while holding every
//! table read lock, so no admitted statement can fall between snapshot
//! and log.

use crate::metrics::{self, SlowEntry, SlowLog, Stage};
use crate::wal::{self, Wal, SNAPSHOT_FILE};
use sqlnf_core::prelude::*;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Default LHS cap of the `MINE` verb.
pub const DEFAULT_MINE_LHS: usize = 3;

/// Why a request failed.
#[derive(Debug)]
pub enum ServeError {
    /// Rejected by the engine (parse error, constraint violation, …).
    Engine(EngineError),
    /// Malformed request or unknown verb target.
    Bad(String),
    /// Durability layer failure.
    Io(io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Engine(e) => write!(f, "{e}"),
            ServeError::Bad(m) => write!(f, "{m}"),
            ServeError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Monotone counters of the store's lifetime (mirrored into
/// `sqlnf-obs` under `serve.*` when the `obs` feature is compiled in).
#[derive(Debug, Default)]
pub struct StoreStats {
    /// Requests dispatched (every verb, including failures).
    pub requests: AtomicU64,
    /// Sessions accepted.
    pub sessions: AtomicU64,
    /// Statements admitted (and logged).
    pub admitted: AtomicU64,
    /// Statements rejected.
    pub rejected: AtomicU64,
    /// Snapshots written.
    pub snapshots: AtomicU64,
}

impl StoreStats {
    /// Renders the counters as `name value` payload lines, sorted by
    /// name — `STATS` and `METRICS` output is stable across runs, so
    /// diffs (and tests diffing the two planes) are deterministic.
    pub fn lines(&self, tables: usize, wal_bytes: u64, wal_records: u64) -> Vec<String> {
        vec![
            format!("requests {}", self.requests.load(Ordering::Relaxed)),
            format!("sessions {}", self.sessions.load(Ordering::Relaxed)),
            format!("snapshots {}", self.snapshots.load(Ordering::Relaxed)),
            format!("stmt.admitted {}", self.admitted.load(Ordering::Relaxed)),
            format!("stmt.rejected {}", self.rejected.load(Ordering::Relaxed)),
            format!("tables {tables}"),
            format!("wal.bytes {wal_bytes}"),
            format!("wal.records {wal_records}"),
        ]
    }
}

type Registry = BTreeMap<String, Arc<RwLock<StoredTable>>>;

/// Fault-injection and observation hooks for deterministic crash
/// testing (used by `sqlnf-harness`; all disabled by default and
/// inert in production paths).
#[derive(Debug)]
struct Hooks {
    /// When enabled, every admitted statement's canonical rendering is
    /// recorded here *in WAL order* (the push happens under the WAL
    /// mutex, immediately after the append), so the log is exactly the
    /// serial history recovery must reproduce.
    oplog: Mutex<Option<Vec<String>>>,
    /// After this many successful WAL appends, every further append
    /// fails with an injected I/O error — a deterministic crash point:
    /// regardless of thread interleaving, exactly this many statements
    /// become durable. `u64::MAX` disables the fault.
    wal_fault_after: AtomicU64,
    /// Successful appends so far (only counted while a fault is armed
    /// or an oplog is attached).
    appends: AtomicU64,
    /// Whether the armed fault has fired at least once.
    fault_fired: AtomicBool,
}

impl Default for Hooks {
    fn default() -> Self {
        Hooks {
            oplog: Mutex::new(None),
            wal_fault_after: AtomicU64::new(u64::MAX),
            appends: AtomicU64::new(0),
            fault_fired: AtomicBool::new(false),
        }
    }
}

/// The shared store: the table registry plus the durability layer.
#[derive(Debug)]
pub struct Store {
    tables: RwLock<Registry>,
    wal: Mutex<Option<Wal>>,
    dir: Option<PathBuf>,
    /// Serializes snapshots; the guarded value is the generation of
    /// the live WAL (tier 1 of the locking discipline).
    generation: Mutex<u64>,
    /// Admitted statements between automatic snapshots (0 = only on
    /// shutdown).
    snapshot_every: u64,
    since_snapshot: AtomicU64,
    /// Test-only fault/observation hooks.
    hooks: Hooks,
    /// Lifetime counters.
    pub stats: StoreStats,
    /// Worst-request log (see [`crate::metrics`]).
    slow: SlowLog,
    /// Process-unique tag stamped into every flight-recorder event this
    /// store emits, so tests sharing the process-global recorder can
    /// filter their own events out of the stream.
    nonce: u64,
}

/// Source of store nonces (flight events carry them as values).
static NONCE: AtomicU64 = AtomicU64::new(1);

impl Store {
    /// An in-memory store without durability.
    pub fn ephemeral() -> Store {
        Store {
            tables: RwLock::new(BTreeMap::new()),
            wal: Mutex::new(None),
            dir: None,
            generation: Mutex::new(0),
            snapshot_every: 0,
            since_snapshot: AtomicU64::new(0),
            hooks: Hooks::default(),
            stats: StoreStats::default(),
            slow: SlowLog::default(),
            nonce: NONCE.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Opens a durable store in `dir`, recovering state by applying the
    /// snapshot (if any) and then replaying the snapshot generation's
    /// WAL; `snapshot_every` admitted statements trigger an automatic
    /// snapshot (0 disables). Logs of any other generation are debris
    /// of a crash mid-snapshot — older ones are fully contained in the
    /// snapshot, newer ones were never written to — and are deleted,
    /// not replayed, so recovery never applies a statement twice.
    pub fn open(dir: &Path, snapshot_every: u64) -> Result<Store, ServeError> {
        std::fs::create_dir_all(dir)?;
        let store = Store {
            tables: RwLock::new(BTreeMap::new()),
            wal: Mutex::new(None),
            dir: Some(dir.to_path_buf()),
            generation: Mutex::new(0),
            snapshot_every,
            since_snapshot: AtomicU64::new(0),
            hooks: Hooks::default(),
            stats: StoreStats::default(),
            slow: SlowLog::default(),
            nonce: NONCE.fetch_add(1, Ordering::Relaxed),
        };
        let snap_path = dir.join(SNAPSHOT_FILE);
        let generation = match std::fs::read_to_string(&snap_path) {
            Ok(image) => {
                let (generation, script) = wal::parse_snapshot(&image);
                store.apply_script_unlogged(script)?;
                generation
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => 0,
            Err(e) => return Err(e.into()),
        };
        wal::cleanup_stale(dir, generation)?;
        // Wal::open truncates any torn tail, so replay-then-append
        // agree on the log's frames.
        let wal = Wal::open(dir, generation)?;
        for stmt in wal::replay(wal.path())? {
            store.apply_script_unlogged(&stmt)?;
        }
        *store.wal.lock().unwrap() = Some(wal);
        *store.generation.lock().unwrap() = generation;
        Ok(store)
    }

    /// Applies a recovery script directly to the registry, bypassing
    /// the WAL.
    fn apply_script_unlogged(&self, src: &str) -> Result<(), ServeError> {
        for stmt in parse_script(src).map_err(EngineError::from)? {
            match stmt {
                Statement::CreateTable { schema, sigma } => {
                    let name = schema.name().to_owned();
                    let mut reg = self.tables.write().unwrap();
                    if reg.contains_key(&name) {
                        return Err(EngineError::DuplicateTable(name).into());
                    }
                    reg.insert(name, Arc::new(RwLock::new(StoredTable::new(schema, sigma))));
                }
                Statement::Insert { table, rows } => {
                    let arc = self.table_arc(&table)?;
                    let mut st = arc.write().unwrap();
                    for row in rows {
                        st.insert(row).map_err(ServeError::Engine)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn table_arc(&self, name: &str) -> Result<Arc<RwLock<StoredTable>>, ServeError> {
        let reg = {
            let _wait = sqlnf_obs::span!("serve.lock_wait.registry");
            metrics::timed(Stage::LockRegistry, || self.tables.read().unwrap())
        };
        reg.get(name)
            .cloned()
            .ok_or_else(|| EngineError::NoSuchTable(name.to_owned()).into())
    }

    /// This store's flight-event tag (see the `nonce` field).
    pub fn nonce(&self) -> u64 {
        self.nonce
    }

    /// The worst-request log (requests recorded by the server's
    /// dispatch loop).
    pub fn slow_log(&self) -> &SlowLog {
        &self.slow
    }

    /// The retained worst requests, worst first.
    pub fn slow_requests(&self) -> Vec<SlowEntry> {
        self.slow.entries()
    }

    /// Table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().unwrap().keys().cloned().collect()
    }

    /// Runs `f` on a read-locked table.
    pub fn with_table<T>(
        &self,
        name: &str,
        f: impl FnOnce(&StoredTable) -> T,
    ) -> Result<T, ServeError> {
        let arc = self.table_arc(name)?;
        let st = {
            // Wait time only: the span must not cover `f` itself.
            let _wait = sqlnf_obs::span!("serve.lock_wait.table");
            metrics::timed(Stage::LockTable, || arc.read().unwrap())
        };
        Ok(f(&st))
    }

    /// Parses and executes a SQL script, logging each admitted
    /// statement to the WAL in its canonical rendering. Statements
    /// apply in order; the first rejection stops the script (earlier
    /// statements stay applied — the wire protocol's unit of atomicity
    /// is the statement, not the script). Returns the number of
    /// statements applied.
    pub fn execute_sql(&self, src: &str) -> Result<usize, ServeError> {
        let parsed = {
            let _span = sqlnf_obs::span!("serve.parse");
            metrics::timed(Stage::Parse, || parse_script(src))
        };
        let stmts = parsed.map_err(|e| {
            self.stats.rejected.fetch_add(1, Ordering::Relaxed);
            sqlnf_obs::count!("serve.stmt.rejected");
            EngineError::from(e)
        })?;
        let mut applied = 0;
        for stmt in stmts {
            match self.apply_logged(stmt) {
                Ok(()) => {
                    applied += 1;
                    self.stats.admitted.fetch_add(1, Ordering::Relaxed);
                    sqlnf_obs::count!("serve.stmt.admitted");
                    sqlnf_obs::event!("serve.stmt.admitted", self.nonce);
                }
                Err(e) => {
                    self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                    sqlnf_obs::count!("serve.stmt.rejected");
                    return Err(e);
                }
            }
        }
        self.maybe_snapshot(applied as u64)?;
        Ok(applied)
    }

    /// Applies one statement under the locking discipline, appending
    /// its canonical rendering to the WAL on admission.
    fn apply_logged(&self, stmt: Statement) -> Result<(), ServeError> {
        match stmt {
            Statement::CreateTable { schema, sigma } => {
                let rendered = render_create_table(&schema, &sigma);
                let name = schema.name().to_owned();
                let mut reg = {
                    let _wait = sqlnf_obs::span!("serve.lock_wait.registry");
                    metrics::timed(Stage::LockRegistry, || self.tables.write().unwrap())
                };
                if reg.contains_key(&name) {
                    return Err(EngineError::DuplicateTable(name).into());
                }
                // Log before publishing: if the WAL is sick, the
                // statement is refused and the registry is unchanged.
                self.append_wal(&rendered)?;
                reg.insert(name, Arc::new(RwLock::new(StoredTable::new(schema, sigma))));
                Ok(())
            }
            Statement::Insert { table, rows } => {
                let arc = self.table_arc(&table)?;
                // How long concurrent writers queue on one table — the
                // suspected cause of serve_4x500 throughput trailing
                // serve_1x500. The span ends at acquisition.
                let mut st = {
                    let _wait = sqlnf_obs::span!("serve.lock_wait.table");
                    metrics::timed(Stage::LockTable, || arc.write().unwrap())
                };
                // Multi-row INSERTs are atomic: roll back this
                // statement's rows if a later one is rejected.
                let base = st.data().len();
                for (i, row) in rows.iter().enumerate() {
                    if let Err(e) = st.insert(row.clone()) {
                        for r in (base..base + i).rev() {
                            st.delete(r).expect("rolling back admitted rows");
                        }
                        return Err(e.into());
                    }
                }
                let rendered = render_insert(&table, &rows);
                if let Err(e) = self.append_wal(&rendered) {
                    for r in (base..base + rows.len()).rev() {
                        st.delete(r).expect("rolling back admitted rows");
                    }
                    return Err(e);
                }
                Ok(())
            }
        }
    }

    /// Appends to the WAL if one is attached (no-op when ephemeral).
    /// An armed fault hook turns the append into an injected I/O error
    /// once its budget is spent, and an attached oplog records the
    /// payload in append order (both under the WAL mutex, so the oplog
    /// is exactly the on-disk serial history).
    fn append_wal(&self, payload: &str) -> Result<(), ServeError> {
        let mut guard = {
            let _wait = sqlnf_obs::span!("serve.lock_wait.wal");
            metrics::timed(Stage::LockWal, || self.wal.lock().unwrap())
        };
        let budget = self.hooks.wal_fault_after.load(Ordering::Relaxed);
        if budget != u64::MAX && self.hooks.appends.load(Ordering::Relaxed) >= budget {
            self.hooks.fault_fired.store(true, Ordering::SeqCst);
            return Err(io::Error::other("injected WAL fault").into());
        }
        if let Some(wal) = guard.as_mut() {
            let _span = sqlnf_obs::span!("serve.wal.append");
            metrics::timed(Stage::WalAppend, || wal.append(payload))?;
        }
        self.hooks.appends.fetch_add(1, Ordering::Relaxed);
        if let Some(log) = self.hooks.oplog.lock().unwrap().as_mut() {
            log.push(payload.to_owned());
        }
        Ok(())
    }

    /// Test hook: start recording every admitted statement (canonical
    /// rendering, WAL order). Used by the fault-injection harness as
    /// the ground-truth serial history for differential recovery
    /// checks.
    pub fn enable_oplog(&self) {
        *self.hooks.oplog.lock().unwrap() = Some(Vec::new());
    }

    /// Test hook: the statements recorded since [`enable_oplog`]
    /// (`Store::enable_oplog`), in WAL order.
    pub fn oplog(&self) -> Vec<String> {
        self.hooks.oplog.lock().unwrap().clone().unwrap_or_default()
    }

    /// Test hook: after `appends` further successful WAL appends, every
    /// append fails with an injected I/O error. Statements admitted
    /// before the fault stay durable; later ones are refused and rolled
    /// back — a deterministic crash point independent of thread
    /// interleaving.
    pub fn inject_wal_fault_after(&self, appends: u64) {
        let done = self.hooks.appends.load(Ordering::Relaxed);
        self.hooks
            .wal_fault_after
            .store(done.saturating_add(appends), Ordering::Relaxed);
    }

    /// Test hook: whether the armed WAL fault has fired.
    pub fn wal_fault_fired(&self) -> bool {
        self.hooks.fault_fired.load(Ordering::SeqCst)
    }

    /// `(bytes, records)` currently in the WAL.
    pub fn wal_size(&self) -> (u64, u64) {
        let guard = self.wal.lock().unwrap();
        guard.as_ref().map_or((0, 0), |w| (w.bytes(), w.records()))
    }

    /// Counts `applied` statements toward the auto-snapshot threshold.
    /// The compare-exchange elects exactly one thread per crossing: a
    /// loser's statements stay counted and re-arm the next trigger, so
    /// concurrent workers never pile into `snapshot()` together.
    fn maybe_snapshot(&self, applied: u64) -> Result<(), ServeError> {
        if self.snapshot_every == 0 || self.dir.is_none() || applied == 0 {
            return Ok(());
        }
        let total = self.since_snapshot.fetch_add(applied, Ordering::Relaxed) + applied;
        if total >= self.snapshot_every
            && self
                .since_snapshot
                .compare_exchange(total, 0, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            self.snapshot()?;
        }
        Ok(())
    }

    /// Renders the whole store as a SQL script that recreates it (the
    /// snapshot format — DDL in registry order, then each table's
    /// rows). Callers must not hold any table lock.
    pub fn export_script(&self) -> String {
        let arcs: Vec<(String, Arc<RwLock<StoredTable>>)> = {
            let reg = self.tables.read().unwrap();
            reg.iter().map(|(n, a)| (n.clone(), a.clone())).collect()
        };
        let mut out = String::new();
        for (name, arc) in &arcs {
            let st = arc.read().unwrap();
            out.push_str(&render_create_table(st.data().schema(), st.sigma()));
            out.push('\n');
            if !st.data().is_empty() {
                out.push_str(&render_insert(name, st.data().rows()));
                out.push('\n');
            }
        }
        out
    }

    /// Writes a snapshot and retires the current WAL by switching to
    /// the next generation. All table read locks are held throughout,
    /// so an admitted statement is always in the snapshot or the live
    /// WAL, and the on-disk order makes every crash point recoverable:
    /// the generation-`g+1` snapshot and its empty log are written and
    /// made durable (file fsync, rename, directory fsync) *before* the
    /// generation-`g` log is deleted — a leftover old-generation log
    /// is therefore always fully contained in the snapshot, and
    /// `open()` discards it instead of replaying it twice.
    pub fn snapshot(&self) -> Result<(), ServeError> {
        let Some(dir) = self.dir.as_ref() else {
            return Ok(());
        };
        let _span = sqlnf_obs::span!("serve.snapshot");
        // Tier 1: one snapshot at a time; the guard owns the live
        // WAL's generation.
        let mut generation = {
            let _wait = sqlnf_obs::span!("serve.lock_wait.snapshot");
            metrics::timed(Stage::LockSnapshot, || self.generation.lock().unwrap())
        };
        let next = *generation + 1;
        let reg = self.tables.read().unwrap();
        let guards: Vec<(&String, std::sync::RwLockReadGuard<'_, StoredTable>)> = reg
            .iter()
            .map(|(name, arc)| (name, arc.read().unwrap()))
            .collect();
        let mut script = wal::snapshot_header(next);
        for (name, st) in &guards {
            script.push_str(&render_create_table(st.data().schema(), st.sigma()));
            script.push('\n');
            if !st.data().is_empty() {
                script.push_str(&render_insert(name, st.data().rows()));
                script.push('\n');
            }
        }
        let tmp = wal::snapshot_tmp_path(dir, next);
        {
            use std::io::Write as _;
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(script.as_bytes())?;
            let _span = sqlnf_obs::span!("serve.wal.fsync");
            metrics::timed(Stage::WalFsync, || f.sync_data())?;
        }
        // The next generation's log must exist before the snapshot
        // naming it is published, and both must be durable before any
        // statement is appended to the new log — otherwise a crash
        // could recover the old snapshot yet discard the new log.
        let fresh = Wal::open(dir, next)?;
        std::fs::rename(&tmp, dir.join(SNAPSHOT_FILE))?;
        wal::sync_dir(dir)?;
        let retired = self.wal.lock().unwrap().replace(fresh);
        if let Some(old) = retired {
            // Already captured by the snapshot; removal is cleanup,
            // not correctness — open() deletes leftovers.
            let _ = std::fs::remove_file(old.path());
            let _ = wal::sync_dir(dir);
        }
        self.since_snapshot.store(0, Ordering::Relaxed);
        *generation = next;
        self.stats.snapshots.fetch_add(1, Ordering::Relaxed);
        sqlnf_obs::count!("serve.snapshots");
        Ok(())
    }

    /// Fsyncs the WAL (graceful shutdown path).
    pub fn sync(&self) -> Result<(), ServeError> {
        let mut guard = {
            let _wait = sqlnf_obs::span!("serve.lock_wait.wal");
            metrics::timed(Stage::LockWal, || self.wal.lock().unwrap())
        };
        if let Some(wal) = guard.as_mut() {
            metrics::timed(Stage::WalFsync, || wal.sync())?;
        }
        Ok(())
    }

    /// Full revalidation: every stored instance satisfies its declared
    /// constraint set (used by tests to audit concurrent admission).
    pub fn satisfies_all_constraints(&self) -> bool {
        let names = self.table_names();
        names.iter().all(|name| {
            self.with_table(name, |st| satisfies_all(st.data(), st.sigma()))
                .unwrap_or(false)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DDL: &str = "CREATE TABLE purchase (
        order_id INT NOT NULL,
        item     TEXT NOT NULL,
        catalog  TEXT,
        price    INT NOT NULL,
        CONSTRAINT line CERTAIN FD (item, catalog) -> (price)
    );";

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sqlnf_store_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn execute_admits_and_rejects() {
        let store = Store::ephemeral();
        store.execute_sql(DDL).unwrap();
        store
            .execute_sql("INSERT INTO purchase VALUES (1, 'Fitbit', 'Amazon', 240);")
            .unwrap();
        let err = store
            .execute_sql("INSERT INTO purchase VALUES (2, 'Fitbit', 'Amazon', 999);")
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::Engine(EngineError::ConstraintViolation { .. })
        ));
        assert_eq!(store.stats.admitted.load(Ordering::Relaxed), 2);
        assert_eq!(store.stats.rejected.load(Ordering::Relaxed), 1);
        assert!(store.satisfies_all_constraints());
    }

    #[test]
    fn multi_row_insert_is_atomic() {
        let store = Store::ephemeral();
        store.execute_sql(DDL).unwrap();
        // Second row violates the c-FD against the first: both roll back.
        let err = store
            .execute_sql("INSERT INTO purchase VALUES (1, 'X', 'A', 10), (2, 'X', 'A', 20);")
            .unwrap_err();
        assert!(matches!(err, ServeError::Engine(_)));
        store
            .with_table("purchase", |st| assert_eq!(st.data().len(), 0))
            .unwrap();
    }

    #[test]
    fn recovery_replays_wal_and_snapshot() {
        let dir = tmp_dir("recover");
        {
            let store = Store::open(&dir, 0).unwrap();
            store.execute_sql(DDL).unwrap();
            store
                .execute_sql("INSERT INTO purchase VALUES (1, 'Fitbit', NULL, 240);")
                .unwrap();
            // No snapshot, no graceful close: state lives in the WAL only.
        }
        let reborn = Store::open(&dir, 0).unwrap();
        reborn
            .with_table("purchase", |st| assert_eq!(st.data().len(), 1))
            .unwrap();
        // Snapshot, append more, recover again: both sources compose.
        reborn.snapshot().unwrap();
        assert_eq!(reborn.wal_size().1, 0);
        reborn
            .execute_sql("INSERT INTO purchase VALUES (2, 'Doll', 'Kingtoys', 25);")
            .unwrap();
        let script = reborn.export_script();
        drop(reborn);
        let third = Store::open(&dir, 0).unwrap();
        assert_eq!(third.export_script(), script);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The crash window the generation scheme closes: the snapshot is
    /// renamed into place but the previous generation's log survives
    /// (power loss before the retired log was deleted). Replaying that
    /// log on top of the snapshot would double every statement — or
    /// refuse to start on `DuplicateTable` — so recovery must discard
    /// it instead.
    #[test]
    fn leftover_old_generation_wal_is_not_replayed() {
        let dir = tmp_dir("stale");
        let store = Store::open(&dir, 0).unwrap();
        store.execute_sql(DDL).unwrap();
        store
            .execute_sql("INSERT INTO purchase VALUES (1, 'Fitbit', NULL, 240);")
            .unwrap();
        let old_log = std::fs::read(wal::wal_path(&dir, 0)).unwrap();
        store.snapshot().unwrap();
        store
            .execute_sql("INSERT INTO purchase VALUES (2, 'Doll', 'Kingtoys', 25);")
            .unwrap();
        let expected = store.export_script();
        drop(store);
        // Resurrect the generation-0 log next to the generation-1
        // snapshot + log, as if the final delete never hit the disk.
        std::fs::write(wal::wal_path(&dir, 0), &old_log).unwrap();
        let reborn = Store::open(&dir, 0).unwrap();
        assert_eq!(reborn.export_script(), expected);
        assert!(reborn.satisfies_all_constraints());
        assert!(!wal::wal_path(&dir, 0).exists(), "stale log cleaned up");
        drop(reborn);
        // Crash *before* the rename instead: an empty next-generation
        // log and a temp snapshot are debris, not state.
        std::fs::write(wal::wal_path(&dir, 9), b"").unwrap();
        std::fs::write(wal::snapshot_tmp_path(&dir, 9), b"junk").unwrap();
        let again = Store::open(&dir, 0).unwrap();
        assert_eq!(again.export_script(), expected);
        assert!(!wal::wal_path(&dir, 9).exists());
        assert!(!wal::snapshot_tmp_path(&dir, 9).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Hammer the auto-snapshot trigger from several writers at once:
    /// snapshots must serialize (no interleaved writers corrupting one
    /// file) and recovery must reproduce the exact store.
    #[test]
    fn concurrent_snapshot_triggers_stay_consistent() {
        let dir = tmp_dir("conc");
        let store = Arc::new(Store::open(&dir, 1).unwrap());
        store.execute_sql(DDL).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|k| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..10 {
                        let id = k * 100 + i;
                        store
                            .execute_sql(&format!(
                                "INSERT INTO purchase VALUES ({id}, 'i{id}', NULL, {id});"
                            ))
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(store.stats.snapshots.load(Ordering::Relaxed) >= 1);
        let expected = store.export_script();
        drop(store);
        let reborn = Store::open(&dir, 0).unwrap();
        assert_eq!(reborn.export_script(), expected);
        assert!(reborn.satisfies_all_constraints());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The harness hooks: the oplog mirrors the admitted history in
    /// order, and an armed WAL fault refuses (and rolls back) every
    /// statement past its budget, deterministically.
    #[test]
    fn oplog_and_wal_fault_hooks() {
        let dir = tmp_dir("hooks");
        let store = Store::open(&dir, 0).unwrap();
        store.enable_oplog();
        store.execute_sql(DDL).unwrap();
        store
            .execute_sql("INSERT INTO purchase VALUES (1, 'A', NULL, 1);")
            .unwrap();
        // DDL + one insert so far; allow exactly one more append.
        store.inject_wal_fault_after(1);
        store
            .execute_sql("INSERT INTO purchase VALUES (2, 'B', NULL, 2);")
            .unwrap();
        assert!(!store.wal_fault_fired());
        let err = store
            .execute_sql("INSERT INTO purchase VALUES (3, 'C', NULL, 3);")
            .unwrap_err();
        assert!(matches!(err, ServeError::Io(_)), "{err}");
        assert!(store.wal_fault_fired());
        // The refused insert was rolled back, not half-applied.
        store
            .with_table("purchase", |st| assert_eq!(st.data().len(), 2))
            .unwrap();
        let oplog = store.oplog();
        assert_eq!(oplog.len(), 3, "{oplog:?}");
        assert!(oplog[0].starts_with("CREATE TABLE"));
        // The oplog replayed through a fresh engine reproduces the
        // recovered store exactly (the harness's differential check).
        let mut reference = Database::new();
        for stmt in &oplog {
            reference.run_script(stmt).unwrap();
        }
        drop(store);
        let reopened = Store::open(&dir, 0).unwrap();
        assert_eq!(reopened.export_script(), reference.export_script());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn auto_snapshot_truncates_wal() {
        let dir = tmp_dir("auto");
        let store = Store::open(&dir, 2).unwrap();
        store.execute_sql(DDL).unwrap();
        store
            .execute_sql("INSERT INTO purchase VALUES (1, 'A', NULL, 1);")
            .unwrap();
        // Threshold reached: snapshot happened, WAL empty.
        assert_eq!(store.wal_size().1, 0);
        assert_eq!(store.stats.snapshots.load(Ordering::Relaxed), 1);
        assert!(dir.join(SNAPSHOT_FILE).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
