//! Append-only, sharded write-ahead log of admitted statements.
//!
//! The log is a sequence of length-prefixed, epoch-stamped frames,
//!
//! ```text
//! #<len>@<epoch>\n<payload>\n
//! ```
//!
//! where `<len>` is the payload's byte length in decimal, `<epoch>` is
//! the statement's position in the store's single global admission
//! order (a monotonically increasing counter shared by every shard),
//! and the payload is one SQL statement in the canonical rendering of
//! `sqlnf_model::sql` (`render_create_table` / `render_insert`), so a
//! log replays through the ordinary parser. Recovery tolerates a torn
//! tail: the first malformed or incomplete frame ends the replay, and
//! the next append truncates the file back to the last good frame.
//!
//! ## Shards
//!
//! A generation's log is split across `wal.<g>.<shard>.log` files;
//! writers pick a shard by hashing the statement's table name, so two
//! tables can commit on different files (and different fsyncs)
//! concurrently. Because every frame carries its global epoch, replay
//! does not depend on the shard layout: recovery reads every shard of
//! the snapshot's generation, merge-sorts the frames by epoch, and
//! replays the longest contiguous run starting at the generation's
//! epoch base (recorded in the snapshot header). A gap — epoch `e`
//! missing because its shard's tail was torn while a later epoch on
//! another shard survived — ends the replay at `e-1`; the frames past
//! the gap were never acknowledged (an ack waits for the cross-shard
//! watermark: every epoch at or below the acked one durable, see
//! [`crate::commit`]) and are discarded by physically truncating
//! every shard back to the durable prefix, so the resumed epoch
//! counter can never collide with a leftover frame.
//!
//! ## Generations
//!
//! A snapshot records (in its header line) the generation of the logs
//! that accompany it and the epoch the next frame will carry. Taking a
//! snapshot never truncates a log in place: it writes the snapshot for
//! generation `g+1`, creates the empty `wal.<g+1>.<s>.log` for every
//! shard, renames the snapshot into place, fsyncs the directory, and
//! only then retires the generation-`g` logs. A crash at any point
//! leaves the directory recoverable: logs whose generation differs
//! from the snapshot's are either fully captured by the snapshot
//! (older) or empty leftovers of an unfinished snapshot (newer), so
//! [`cleanup_stale`] deletes them before replay instead of replaying
//! them twice.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File name of the snapshot inside a WAL directory.
pub const SNAPSHOT_FILE: &str = "snapshot.sql";

/// First line of every snapshot file; the generation follows.
const SNAPSHOT_HEADER: &str = "-- sqlnf snapshot generation=";

/// Separates the generation from the epoch base in a snapshot header.
const SNAPSHOT_EPOCH: &str = " epoch=";

/// Path of `shard`'s log for `generation` inside `dir`.
pub fn wal_path(dir: &Path, generation: u64, shard: u64) -> PathBuf {
    dir.join(format!("wal.{generation}.{shard}.log"))
}

/// Path of the snapshot temp file for `generation` inside `dir` (a
/// unique name per generation, so an interrupted writer can never be
/// interleaved with a later one).
pub fn snapshot_tmp_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snapshot.{generation}.tmp"))
}

/// The header line a snapshot of `generation` starts with (stripped
/// before the body is parsed as SQL). `epoch_base` is the epoch the
/// first frame logged after the snapshot will carry.
pub fn snapshot_header(generation: u64, epoch_base: u64) -> String {
    format!("{SNAPSHOT_HEADER}{generation}{SNAPSHOT_EPOCH}{epoch_base}\n")
}

/// Splits a snapshot image into its generation, its epoch base, and
/// its SQL body. A missing or malformed header reads as generation 0
/// with epoch base 1 and the whole image as body; a header without an
/// epoch field (written before logs were sharded) reads as base 1.
pub fn parse_snapshot(image: &str) -> (u64, u64, &str) {
    if let Some(rest) = image.strip_prefix(SNAPSHOT_HEADER) {
        if let Some((head, body)) = rest.split_once('\n') {
            let (gen, epoch) = match head.split_once(SNAPSHOT_EPOCH) {
                Some((g, e)) => (g, e.trim().parse().ok()),
                None => (head, Some(1)),
            };
            if let (Ok(generation), Some(epoch_base)) = (gen.trim().parse(), epoch) {
                return (generation, epoch_base, body);
            }
        }
    }
    (0, 1, image)
}

/// The shard logs of `generation` present in `dir`, as
/// `(shard, path)` pairs in shard order. Lists what is on disk rather
/// than assuming a shard count, so a store reopened with a different
/// `--wal-shards` still recovers every frame.
pub fn shard_logs(dir: &Path, generation: u64) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some((g, shard)) = parse_log_name(name) {
            if g == generation {
                out.push((shard, entry.path()));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Parses `wal.<g>.<shard>.log` into `(g, shard)`.
fn parse_log_name(name: &str) -> Option<(u64, u64)> {
    let rest = name.strip_prefix("wal.")?.strip_suffix(".log")?;
    let (g, shard) = rest.split_once('.')?;
    Some((g.parse().ok()?, shard.parse().ok()?))
}

/// Deletes shard logs of any generation other than `keep` plus
/// leftover snapshot temp files — the debris of a crash mid-snapshot,
/// all of it already applied (older logs) or never written to (newer
/// logs).
pub fn cleanup_stale(dir: &Path, keep: u64) -> io::Result<()> {
    let mut removed = false;
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale_log = parse_log_name(name).is_some_and(|(g, _)| g != keep);
        let stale_tmp = name.starts_with("snapshot.") && name.ends_with(".tmp");
        if stale_log || stale_tmp {
            std::fs::remove_file(entry.path())?;
            removed = true;
        }
    }
    if removed {
        sync_dir(dir)?;
    }
    Ok(())
}

/// Fsyncs a directory so renames/creates/removes inside it are durable.
pub fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// An open write-ahead log shard.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    bytes: u64,
    records: u64,
}

impl Wal {
    /// Opens (creating if needed) `shard`'s log of `generation` inside
    /// `dir`, positioned after the last complete frame — a torn tail
    /// from a crash is discarded here, so recovery and the append path
    /// agree on the log's contents.
    pub fn open(dir: &Path, generation: u64, shard: u64) -> io::Result<Wal> {
        Self::open_capped(dir, generation, shard, None)
    }

    /// Like [`open`](Self::open), but additionally discards any frame
    /// whose epoch exceeds `cap` (and everything after it). Recovery
    /// uses this to erase frames past an epoch gap: they were written
    /// by a crashed commit whose merge prefix ends earlier, and the
    /// resumed epoch counter must not collide with them.
    pub fn open_capped(
        dir: &Path,
        generation: u64,
        shard: u64,
        cap: Option<u64>,
    ) -> io::Result<Wal> {
        std::fs::create_dir_all(dir)?;
        let path = wal_path(dir, generation, shard);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        let (frames, mut good) = scan_frames(&raw);
        let mut records = frames.len();
        if let Some(cap) = cap {
            if let Some(i) = frames.iter().position(|(e, _)| *e > cap) {
                records = i;
                good = frames[..i].iter().map(|(e, p)| frame_len(*e, p)).sum();
            }
        }
        if (good as u64) < raw.len() as u64 {
            file.set_len(good as u64)?;
        }
        file.seek(SeekFrom::Start(good as u64))?;
        Ok(Wal {
            file,
            path,
            bytes: good as u64,
            records: records as u64,
        })
    }

    /// Appends one frame. The write lands in the OS page cache; an
    /// explicit [`sync`](Self::sync) is needed for durability. Returns
    /// the frame's byte size.
    pub fn append(&mut self, epoch: u64, payload: &str) -> io::Result<u64> {
        self.append_batch(std::slice::from_ref(&(epoch, payload.to_owned())))
    }

    /// Appends a batch of frames as a single `write` call — the heart
    /// of group commit: one syscall and (after [`sync`](Self::sync))
    /// one fsync cover every waiter in the batch. Returns the bytes
    /// written.
    pub fn append_batch(&mut self, frames: &[(u64, String)]) -> io::Result<u64> {
        let mut buf = String::new();
        for (epoch, payload) in frames {
            render_frame(&mut buf, *epoch, payload);
        }
        self.file.write_all(buf.as_bytes())?;
        self.bytes += buf.len() as u64;
        self.records += frames.len() as u64;
        sqlnf_obs::count!("serve.wal.bytes", buf.len() as u64);
        sqlnf_obs::count!("serve.wal.records", frames.len() as u64);
        Ok(buf.len() as u64)
    }

    /// Forces the log to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        let _span = sqlnf_obs::span!("serve.wal.fsync");
        self.file.sync_data()
    }

    /// Rolls the log back to `bytes`/`records`, erasing a batch whose
    /// commit failed between `write` and `fsync` so the frames are
    /// never replayed (their writers were answered with an error, not
    /// an ack).
    pub fn truncate_to(&mut self, bytes: u64, records: u64) -> io::Result<()> {
        self.file.set_len(bytes)?;
        self.file.seek(SeekFrom::Start(bytes))?;
        self.bytes = bytes;
        self.records = records;
        Ok(())
    }

    /// Bytes currently in the log.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Frames currently in the log.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Renders one frame into `buf`.
fn render_frame(buf: &mut String, epoch: u64, payload: &str) {
    use std::fmt::Write as _;
    let _ = write!(buf, "#{}@{epoch}\n{payload}\n", payload.len());
}

/// Byte size of one rendered frame.
fn frame_len(epoch: u64, payload: &str) -> usize {
    let mut buf = String::new();
    render_frame(&mut buf, epoch, payload);
    buf.len()
}

/// Parses the complete frames of a raw log image; returns the
/// `(epoch, payload)` pairs and the byte offset just past the last
/// complete frame.
fn scan_frames(raw: &[u8]) -> (Vec<(u64, String)>, usize) {
    let mut out = Vec::new();
    let mut at = 0usize;
    loop {
        let frame_start = at;
        if at >= raw.len() || raw[at] != b'#' {
            return (out, frame_start);
        }
        at += 1;
        let Some((len, next)) = scan_number(raw, at) else {
            return (out, frame_start);
        };
        at = next;
        if at >= raw.len() || raw[at] != b'@' {
            return (out, frame_start);
        }
        at += 1;
        let Some((epoch, next)) = scan_number(raw, at) else {
            return (out, frame_start);
        };
        at = next;
        if at >= raw.len() || raw[at] != b'\n' {
            return (out, frame_start);
        }
        at += 1;
        let Some(end) = at.checked_add(len as usize) else {
            return (out, frame_start);
        };
        if end >= raw.len() || raw[end] != b'\n' {
            return (out, frame_start);
        }
        match std::str::from_utf8(&raw[at..end]) {
            Ok(s) => out.push((epoch, s.to_owned())),
            Err(_) => return (out, frame_start),
        }
        at = end + 1;
    }
}

/// Parses a non-empty decimal run at `at`; returns the value and the
/// offset just past it.
fn scan_number(raw: &[u8], at: usize) -> Option<(u64, usize)> {
    let start = at;
    let mut at = at;
    while at < raw.len() && raw[at].is_ascii_digit() {
        at += 1;
    }
    if at == start {
        return None;
    }
    let n = std::str::from_utf8(&raw[start..at]).ok()?.parse().ok()?;
    Some((n, at))
}

/// Reads the `(epoch, payload)` pairs of all complete frames of a log
/// file; a missing file is an empty log.
pub fn replay(path: &Path) -> io::Result<Vec<(u64, String)>> {
    let raw = match std::fs::read(path) {
        Ok(raw) => raw,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    Ok(scan_frames(&raw).0)
}

/// Merges per-shard frame lists into the single replayable history:
/// sorts everything by epoch and keeps the longest contiguous run
/// starting at `epoch_base`. Returns the merged run and the last good
/// epoch (`epoch_base - 1` if the run is empty). A duplicate epoch —
/// impossible under the commit protocol, but conceivable after manual
/// log surgery — is skipped as stale: the first frame bearing an
/// epoch wins, later ones are ignored and the run continues. Frames
/// below `epoch_base` (already captured by the snapshot) are skipped
/// the same way.
pub fn merge_by_epoch(shards: Vec<Vec<(u64, String)>>, epoch_base: u64) -> (Vec<String>, u64) {
    let mut all: Vec<(u64, String)> = shards.into_iter().flatten().collect();
    all.sort_by_key(|a| a.0);
    let mut out = Vec::new();
    let mut last = epoch_base.saturating_sub(1);
    for (epoch, payload) in all {
        if epoch == last + 1 {
            out.push(payload);
            last = epoch;
        } else if epoch > last {
            break; // gap: a torn shard tail swallowed `last+1`
        }
        // epoch <= last: duplicate, or below the base; skip as stale.
    }
    (out, last)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sqlnf_wal_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_replay_round_trip() {
        let dir = tmp_dir("rt");
        let mut wal = Wal::open(&dir, 0, 0).unwrap();
        wal.append(1, "CREATE TABLE t (a TEXT);").unwrap();
        wal.append(2, "INSERT INTO t VALUES ('x;\ny');").unwrap();
        assert_eq!(wal.records(), 2);
        let back = replay(&wal_path(&dir, 0, 0)).unwrap();
        assert_eq!(
            back,
            vec![
                (1, "CREATE TABLE t (a TEXT);".to_owned()),
                (2, "INSERT INTO t VALUES ('x;\ny');".to_owned())
            ]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_append_is_one_frame_per_statement() {
        let dir = tmp_dir("batch");
        let mut wal = Wal::open(&dir, 0, 0).unwrap();
        let frames: Vec<(u64, String)> = (1..=5)
            .map(|i| (i, format!("INSERT INTO t VALUES ({i});")))
            .collect();
        wal.append_batch(&frames).unwrap();
        assert_eq!(wal.records(), 5);
        assert_eq!(replay(&wal_path(&dir, 0, 0)).unwrap(), frames);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_tolerated_and_truncated() {
        let dir = tmp_dir("torn");
        let mut wal = Wal::open(&dir, 0, 0).unwrap();
        wal.append(1, "INSERT INTO t VALUES (1);").unwrap();
        let good_bytes = wal.bytes();
        drop(wal);
        // Simulate a crash mid-append: a frame with a short payload.
        let path = wal_path(&dir, 0, 0);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"#999@2\nINSERT INTO").unwrap();
        drop(f);
        assert_eq!(
            replay(&path).unwrap(),
            vec![(1, "INSERT INTO t VALUES (1);".to_owned())]
        );
        // Re-opening truncates back to the last good frame and appends
        // continue from there.
        let mut wal = Wal::open(&dir, 0, 0).unwrap();
        assert_eq!(wal.bytes(), good_bytes);
        assert_eq!(wal.records(), 1);
        wal.append(2, "INSERT INTO t VALUES (2);").unwrap();
        assert_eq!(replay(&path).unwrap().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_capped_erases_frames_past_the_cap() {
        let dir = tmp_dir("cap");
        let mut wal = Wal::open(&dir, 0, 0).unwrap();
        for epoch in 1..=4 {
            wal.append(epoch, &format!("INSERT INTO t VALUES ({epoch});"))
                .unwrap();
        }
        drop(wal);
        let wal = Wal::open_capped(&dir, 0, 0, Some(2)).unwrap();
        assert_eq!(wal.records(), 2);
        drop(wal);
        let back = replay(&wal_path(&dir, 0, 0)).unwrap();
        assert_eq!(back.iter().map(|(e, _)| *e).collect::<Vec<_>>(), vec![1, 2]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_by_epoch_stops_at_a_gap() {
        let a = vec![(1, "A".to_owned()), (4, "D".to_owned())];
        let b = vec![(2, "B".to_owned()), (6, "F".to_owned())];
        // Epochs 1,2,4,6 from base 1: 3 is missing, so only 1..=2 replay.
        let (run, last) = merge_by_epoch(vec![a, b], 1);
        assert_eq!(run, vec!["A".to_owned(), "B".to_owned()]);
        assert_eq!(last, 2);
        // An empty merge reports base-1 as the last good epoch.
        let (run, last) = merge_by_epoch(vec![Vec::new()], 7);
        assert!(run.is_empty());
        assert_eq!(last, 6);
        // A run starting past the base is entirely discarded.
        let (run, last) = merge_by_epoch(vec![vec![(9, "X".to_owned())]], 7);
        assert!(run.is_empty());
        assert_eq!(last, 6);
    }

    #[test]
    fn snapshot_header_round_trips() {
        let image = format!("{}CREATE TABLE t (a INT);\n", snapshot_header(7, 42));
        assert_eq!(parse_snapshot(&image), (7, 42, "CREATE TABLE t (a INT);\n"));
        // Pre-shard headers without an epoch field read as base 1.
        assert_eq!(
            parse_snapshot("-- sqlnf snapshot generation=7\nBODY"),
            (7, 1, "BODY")
        );
        // Headerless (or mangled) snapshots read as generation 0.
        assert_eq!(
            parse_snapshot("CREATE TABLE t (a INT);"),
            (0, 1, "CREATE TABLE t (a INT);")
        );
    }

    #[test]
    fn cleanup_removes_other_generations_and_tmps() {
        let dir = tmp_dir("clean");
        std::fs::write(wal_path(&dir, 3, 0), b"").unwrap();
        std::fs::write(wal_path(&dir, 4, 0), b"").unwrap();
        std::fs::write(wal_path(&dir, 4, 1), b"").unwrap();
        std::fs::write(wal_path(&dir, 5, 2), b"").unwrap();
        std::fs::write(snapshot_tmp_path(&dir, 4), b"junk").unwrap();
        std::fs::write(dir.join(SNAPSHOT_FILE), b"").unwrap();
        cleanup_stale(&dir, 4).unwrap();
        assert!(!wal_path(&dir, 3, 0).exists());
        assert!(wal_path(&dir, 4, 0).exists());
        assert!(wal_path(&dir, 4, 1).exists());
        assert!(!wal_path(&dir, 5, 2).exists());
        assert!(!snapshot_tmp_path(&dir, 4).exists());
        assert!(dir.join(SNAPSHOT_FILE).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_logs_lists_the_generation() {
        let dir = tmp_dir("shards");
        std::fs::write(wal_path(&dir, 2, 1), b"").unwrap();
        std::fs::write(wal_path(&dir, 2, 0), b"").unwrap();
        std::fs::write(wal_path(&dir, 3, 0), b"").unwrap();
        let logs = shard_logs(&dir, 2).unwrap();
        assert_eq!(logs.len(), 2);
        assert_eq!(logs[0].0, 0);
        assert_eq!(logs[1].0, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
