//! Append-only write-ahead log of admitted statements.
//!
//! The log is a sequence of length-prefixed frames,
//!
//! ```text
//! #<len>\n<payload>\n
//! ```
//!
//! where `<len>` is the payload's byte length in decimal and the
//! payload is one SQL statement in the canonical rendering of
//! `sqlnf_model::sql` (`render_create_table` / `render_insert`), so a
//! log replays through the ordinary parser. Recovery tolerates a torn
//! tail: the first malformed or incomplete frame ends the replay, and
//! the next append truncates the file back to the last good frame.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File name of the log inside a WAL directory.
pub const WAL_FILE: &str = "wal.log";
/// File name of the snapshot inside a WAL directory.
pub const SNAPSHOT_FILE: &str = "snapshot.sql";

/// An open write-ahead log.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    bytes: u64,
    records: u64,
}

impl Wal {
    /// Opens (creating if needed) the log inside `dir`, positioned
    /// after the last complete frame — a torn tail from a crash is
    /// discarded here, so recovery and the append path agree on the
    /// log's contents.
    pub fn open(dir: &Path) -> io::Result<Wal> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(WAL_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        let (records, good) = scan_frames(&raw);
        if (good as u64) < raw.len() as u64 {
            file.set_len(good as u64)?;
        }
        file.seek(SeekFrom::Start(good as u64))?;
        Ok(Wal {
            file,
            path,
            bytes: good as u64,
            records: records.len() as u64,
        })
    }

    /// Appends one frame and flushes it to the OS (durability against
    /// process death; an explicit [`sync`](Self::sync) is needed for
    /// durability against power loss). Returns the frame's byte size.
    pub fn append(&mut self, payload: &str) -> io::Result<u64> {
        let frame = format!("#{}\n{payload}\n", payload.len());
        self.file.write_all(frame.as_bytes())?;
        self.file.flush()?;
        self.bytes += frame.len() as u64;
        self.records += 1;
        sqlnf_obs::count!("serve.wal.bytes", frame.len() as u64);
        sqlnf_obs::count!("serve.wal.records");
        Ok(frame.len() as u64)
    }

    /// Forces the log to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    /// Empties the log (after a snapshot has captured its effects).
    pub fn truncate(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_data()?;
        self.bytes = 0;
        self.records = 0;
        Ok(())
    }

    /// Bytes currently in the log.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Frames currently in the log.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Parses the complete frames of a raw log image; returns the payloads
/// and the byte offset just past the last complete frame.
fn scan_frames(raw: &[u8]) -> (Vec<String>, usize) {
    let mut out = Vec::new();
    let mut at = 0usize;
    loop {
        let frame_start = at;
        if at >= raw.len() || raw[at] != b'#' {
            return (out, frame_start);
        }
        at += 1;
        let len_start = at;
        while at < raw.len() && raw[at].is_ascii_digit() {
            at += 1;
        }
        if at == len_start || at >= raw.len() || raw[at] != b'\n' {
            return (out, frame_start);
        }
        let Ok(len) = std::str::from_utf8(&raw[len_start..at])
            .unwrap()
            .parse::<usize>()
        else {
            return (out, frame_start);
        };
        at += 1;
        let Some(end) = at.checked_add(len) else {
            return (out, frame_start);
        };
        if end >= raw.len() || raw[end] != b'\n' {
            return (out, frame_start);
        }
        match std::str::from_utf8(&raw[at..end]) {
            Ok(s) => out.push(s.to_owned()),
            Err(_) => return (out, frame_start),
        }
        at = end + 1;
    }
}

/// Reads the payloads of all complete frames of a log file; a missing
/// file is an empty log.
pub fn replay(path: &Path) -> io::Result<Vec<String>> {
    let raw = match std::fs::read(path) {
        Ok(raw) => raw,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    Ok(scan_frames(&raw).0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sqlnf_wal_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_replay_round_trip() {
        let dir = tmp_dir("rt");
        let mut wal = Wal::open(&dir).unwrap();
        wal.append("CREATE TABLE t (a TEXT);").unwrap();
        wal.append("INSERT INTO t VALUES ('x;\ny');").unwrap();
        assert_eq!(wal.records(), 2);
        let back = replay(&dir.join(WAL_FILE)).unwrap();
        assert_eq!(
            back,
            vec![
                "CREATE TABLE t (a TEXT);".to_owned(),
                "INSERT INTO t VALUES ('x;\ny');".to_owned()
            ]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_tolerated_and_truncated() {
        let dir = tmp_dir("torn");
        let mut wal = Wal::open(&dir).unwrap();
        wal.append("INSERT INTO t VALUES (1);").unwrap();
        let good_bytes = wal.bytes();
        drop(wal);
        // Simulate a crash mid-append: a frame with a short payload.
        let path = dir.join(WAL_FILE);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"#999\nINSERT INTO").unwrap();
        drop(f);
        assert_eq!(
            replay(&path).unwrap(),
            vec!["INSERT INTO t VALUES (1);".to_owned()]
        );
        // Re-opening truncates back to the last good frame and appends
        // continue from there.
        let mut wal = Wal::open(&dir).unwrap();
        assert_eq!(wal.bytes(), good_bytes);
        assert_eq!(wal.records(), 1);
        wal.append("INSERT INTO t VALUES (2);").unwrap();
        assert_eq!(replay(&path).unwrap().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncate_empties_the_log() {
        let dir = tmp_dir("trunc");
        let mut wal = Wal::open(&dir).unwrap();
        wal.append("INSERT INTO t VALUES (1);").unwrap();
        wal.truncate().unwrap();
        assert_eq!(wal.bytes(), 0);
        assert!(replay(&dir.join(WAL_FILE)).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
