//! Append-only write-ahead log of admitted statements.
//!
//! The log is a sequence of length-prefixed frames,
//!
//! ```text
//! #<len>\n<payload>\n
//! ```
//!
//! where `<len>` is the payload's byte length in decimal and the
//! payload is one SQL statement in the canonical rendering of
//! `sqlnf_model::sql` (`render_create_table` / `render_insert`), so a
//! log replays through the ordinary parser. Recovery tolerates a torn
//! tail: the first malformed or incomplete frame ends the replay, and
//! the next append truncates the file back to the last good frame.
//!
//! ## Generations
//!
//! Logs are named `wal.<generation>.log` and a snapshot records (in
//! its header line) the generation of the log that accompanies it.
//! Taking a snapshot never truncates a log in place: it writes the
//! snapshot for generation `g+1`, creates the empty `wal.<g+1>.log`,
//! renames the snapshot into place, fsyncs the directory, and only
//! then retires `wal.<g>.log`. A crash at any point leaves the
//! directory recoverable: logs whose generation differs from the
//! snapshot's are either fully captured by the snapshot (older) or
//! empty leftovers of an unfinished snapshot (newer), so
//! [`cleanup_stale`] deletes them before replay instead of replaying
//! them twice.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File name of the snapshot inside a WAL directory.
pub const SNAPSHOT_FILE: &str = "snapshot.sql";

/// First line of every snapshot file; the generation follows.
const SNAPSHOT_HEADER: &str = "-- sqlnf snapshot generation=";

/// Path of the log for `generation` inside `dir`.
pub fn wal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("wal.{generation}.log"))
}

/// Path of the snapshot temp file for `generation` inside `dir` (a
/// unique name per generation, so an interrupted writer can never be
/// interleaved with a later one).
pub fn snapshot_tmp_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snapshot.{generation}.tmp"))
}

/// The header line a snapshot of `generation` starts with (stripped
/// before the body is parsed as SQL).
pub fn snapshot_header(generation: u64) -> String {
    format!("{SNAPSHOT_HEADER}{generation}\n")
}

/// Splits a snapshot image into its generation and its SQL body. A
/// missing or malformed header reads as generation 0 with the whole
/// image as body.
pub fn parse_snapshot(image: &str) -> (u64, &str) {
    if let Some(rest) = image.strip_prefix(SNAPSHOT_HEADER) {
        if let Some((gen, body)) = rest.split_once('\n') {
            if let Ok(generation) = gen.trim().parse() {
                return (generation, body);
            }
        }
    }
    (0, image)
}

/// Deletes logs of any generation other than `keep` plus leftover
/// snapshot temp files — the debris of a crash mid-snapshot, all of it
/// already applied (older logs) or never written to (newer logs).
pub fn cleanup_stale(dir: &Path, keep: u64) -> io::Result<()> {
    let mut removed = false;
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale_log = name
            .strip_prefix("wal.")
            .and_then(|r| r.strip_suffix(".log"))
            .and_then(|g| g.parse::<u64>().ok())
            .is_some_and(|g| g != keep);
        let stale_tmp = name.starts_with("snapshot.") && name.ends_with(".tmp");
        if stale_log || stale_tmp {
            std::fs::remove_file(entry.path())?;
            removed = true;
        }
    }
    if removed {
        sync_dir(dir)?;
    }
    Ok(())
}

/// Fsyncs a directory so renames/creates/removes inside it are durable.
pub fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// An open write-ahead log.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    bytes: u64,
    records: u64,
}

impl Wal {
    /// Opens (creating if needed) the log of `generation` inside
    /// `dir`, positioned after the last complete frame — a torn tail
    /// from a crash is discarded here, so recovery and the append path
    /// agree on the log's contents.
    pub fn open(dir: &Path, generation: u64) -> io::Result<Wal> {
        std::fs::create_dir_all(dir)?;
        let path = wal_path(dir, generation);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        let (records, good) = scan_frames(&raw);
        if (good as u64) < raw.len() as u64 {
            file.set_len(good as u64)?;
        }
        file.seek(SeekFrom::Start(good as u64))?;
        Ok(Wal {
            file,
            path,
            bytes: good as u64,
            records: records.len() as u64,
        })
    }

    /// Appends one frame and flushes it to the OS (durability against
    /// process death; an explicit [`sync`](Self::sync) is needed for
    /// durability against power loss). Returns the frame's byte size.
    pub fn append(&mut self, payload: &str) -> io::Result<u64> {
        let frame = format!("#{}\n{payload}\n", payload.len());
        self.file.write_all(frame.as_bytes())?;
        self.file.flush()?;
        self.bytes += frame.len() as u64;
        self.records += 1;
        sqlnf_obs::count!("serve.wal.bytes", frame.len() as u64);
        sqlnf_obs::count!("serve.wal.records");
        Ok(frame.len() as u64)
    }

    /// Forces the log to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        let _span = sqlnf_obs::span!("serve.wal.fsync");
        self.file.sync_data()
    }

    /// Bytes currently in the log.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Frames currently in the log.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Parses the complete frames of a raw log image; returns the payloads
/// and the byte offset just past the last complete frame.
fn scan_frames(raw: &[u8]) -> (Vec<String>, usize) {
    let mut out = Vec::new();
    let mut at = 0usize;
    loop {
        let frame_start = at;
        if at >= raw.len() || raw[at] != b'#' {
            return (out, frame_start);
        }
        at += 1;
        let len_start = at;
        while at < raw.len() && raw[at].is_ascii_digit() {
            at += 1;
        }
        if at == len_start || at >= raw.len() || raw[at] != b'\n' {
            return (out, frame_start);
        }
        let Ok(len) = std::str::from_utf8(&raw[len_start..at])
            .unwrap()
            .parse::<usize>()
        else {
            return (out, frame_start);
        };
        at += 1;
        let Some(end) = at.checked_add(len) else {
            return (out, frame_start);
        };
        if end >= raw.len() || raw[end] != b'\n' {
            return (out, frame_start);
        }
        match std::str::from_utf8(&raw[at..end]) {
            Ok(s) => out.push(s.to_owned()),
            Err(_) => return (out, frame_start),
        }
        at = end + 1;
    }
}

/// Reads the payloads of all complete frames of a log file; a missing
/// file is an empty log.
pub fn replay(path: &Path) -> io::Result<Vec<String>> {
    let raw = match std::fs::read(path) {
        Ok(raw) => raw,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    Ok(scan_frames(&raw).0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sqlnf_wal_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_replay_round_trip() {
        let dir = tmp_dir("rt");
        let mut wal = Wal::open(&dir, 0).unwrap();
        wal.append("CREATE TABLE t (a TEXT);").unwrap();
        wal.append("INSERT INTO t VALUES ('x;\ny');").unwrap();
        assert_eq!(wal.records(), 2);
        let back = replay(&wal_path(&dir, 0)).unwrap();
        assert_eq!(
            back,
            vec![
                "CREATE TABLE t (a TEXT);".to_owned(),
                "INSERT INTO t VALUES ('x;\ny');".to_owned()
            ]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_tolerated_and_truncated() {
        let dir = tmp_dir("torn");
        let mut wal = Wal::open(&dir, 0).unwrap();
        wal.append("INSERT INTO t VALUES (1);").unwrap();
        let good_bytes = wal.bytes();
        drop(wal);
        // Simulate a crash mid-append: a frame with a short payload.
        let path = wal_path(&dir, 0);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"#999\nINSERT INTO").unwrap();
        drop(f);
        assert_eq!(
            replay(&path).unwrap(),
            vec!["INSERT INTO t VALUES (1);".to_owned()]
        );
        // Re-opening truncates back to the last good frame and appends
        // continue from there.
        let mut wal = Wal::open(&dir, 0).unwrap();
        assert_eq!(wal.bytes(), good_bytes);
        assert_eq!(wal.records(), 1);
        wal.append("INSERT INTO t VALUES (2);").unwrap();
        assert_eq!(replay(&path).unwrap().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_header_round_trips() {
        let image = format!("{}CREATE TABLE t (a INT);\n", snapshot_header(7));
        assert_eq!(parse_snapshot(&image), (7, "CREATE TABLE t (a INT);\n"));
        // Headerless (or mangled) snapshots read as generation 0.
        assert_eq!(
            parse_snapshot("CREATE TABLE t (a INT);"),
            (0, "CREATE TABLE t (a INT);")
        );
    }

    #[test]
    fn cleanup_removes_other_generations_and_tmps() {
        let dir = tmp_dir("clean");
        std::fs::write(wal_path(&dir, 3), b"").unwrap();
        std::fs::write(wal_path(&dir, 4), b"").unwrap();
        std::fs::write(wal_path(&dir, 5), b"").unwrap();
        std::fs::write(snapshot_tmp_path(&dir, 4), b"junk").unwrap();
        std::fs::write(dir.join(SNAPSHOT_FILE), b"").unwrap();
        cleanup_stale(&dir, 4).unwrap();
        assert!(!wal_path(&dir, 3).exists());
        assert!(wal_path(&dir, 4).exists());
        assert!(!wal_path(&dir, 5).exists());
        assert!(!snapshot_tmp_path(&dir, 4).exists());
        assert!(dir.join(SNAPSHOT_FILE).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
