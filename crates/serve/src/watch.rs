//! Live discovery: the `WATCH` subscription plane.
//!
//! A [`WatchHub`] thread shadows the store's committed history with
//! per-table [`IncrementalMiner`]s and streams *fact diffs* — newly
//! appearing or newly refuted possible/certain FDs and keys — to
//! registered subscribers as framed `EVENT` lines.
//!
//! ## Durable-watermark contract
//!
//! Frames enter the hub from [`GroupWal::commit_locked`]'s success
//! path, i.e. *after* the batch is fsync-durable on its shard. The hub
//! holds them in a reorder buffer and releases epochs strictly
//! contiguously from the store's base epoch: epoch `e` is applied only
//! once every epoch `< e` has arrived. Because a frame is sent exactly
//! once its shard commit succeeds, contiguity-from-base reproduces the
//! cross-shard durable watermark without ever reading it — a censored
//! (failed) epoch simply never arrives, so the stream stalls in front
//! of it forever and a subscriber can never observe state beyond the
//! watermark. This mirrors the restart contract: a degraded store
//! replays exactly the contiguous durable prefix.
//!
//! ## Wire grammar
//!
//! ```text
//! EVENT <epoch> <table> +<fact>     fact newly holds as of <epoch>
//! EVENT <epoch> <table> -<fact>     fact refuted by commit <epoch>
//! LAGGED <n>                        n events were dropped before this point
//! ```
//!
//! Facts are space-free tokens: `pfd:a,b->c`, `cfd:a->b`, `pkey:a,b`,
//! `ckey:a` — plus `wfd:a->b` for minimal *weak* FDs, which only
//! subscribers registered with `WATCH <t|*> weak` receive (there is no
//! `wkey:` fact: weak keys coincide with p-keys). Default subscribers
//! never see `wfd:` lines, so pre-weak consumers' streams are
//! byte-identical. Within one epoch, refutations (`-`) are emitted
//! before appearances (`+`), each in lexicographic fact order, so the
//! event stream for a given history is byte-deterministic.
//!
//! ## Backpressure
//!
//! Each subscriber owns a bounded queue ([`DEFAULT_WATCH_QUEUE`]
//! lines). When the hub finds the queue full it drops the event and
//! bumps a lag counter instead of blocking the commit plane; the next
//! drain appends an explicit `LAGGED <n>` notice so the consumer knows
//! the stream has a gap and can re-baseline with a full `MINE`.
//!
//! [`GroupWal::commit_locked`]: crate::commit::GroupWal

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread;

use sqlnf_discovery::prelude::*;
use sqlnf_model::prelude::*;

use crate::store::DEFAULT_MINE_LHS;

/// Default per-subscriber queue depth (event lines) before lagging.
pub const DEFAULT_WATCH_QUEUE: usize = 4096;

/// LHS/key size bound used for the hub's shadow mining (matches the
/// `MINE` verb default).
pub const WATCH_MAX_LHS: usize = DEFAULT_MINE_LHS;

/// One streamed discovery event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchEvent {
    /// Commit epoch whose admission changed the fact set.
    pub epoch: u64,
    /// Table the fact belongs to.
    pub table: String,
    /// `true` if the fact newly holds, `false` if newly refuted.
    pub appeared: bool,
    /// Space-free fact token (`pfd:a,b->c`, `ckey:a`, …).
    pub fact: String,
}

impl WatchEvent {
    /// Render the framed wire line for this event.
    pub fn line(&self) -> String {
        let sign = if self.appeared { '+' } else { '-' };
        format!("EVENT {} {} {}{}", self.epoch, self.table, sign, self.fact)
    }

    /// Parse a wire line produced by [`WatchEvent::line`].
    pub fn parse(line: &str) -> Option<WatchEvent> {
        let rest = line.strip_prefix("EVENT ")?;
        let mut parts = rest.splitn(3, ' ');
        let epoch = parts.next()?.parse().ok()?;
        let table = parts.next()?.to_string();
        let signed = parts.next()?;
        let appeared = match signed.as_bytes().first()? {
            b'+' => true,
            b'-' => false,
            _ => return None,
        };
        Some(WatchEvent {
            epoch,
            table,
            appeared,
            fact: signed[1..].to_string(),
        })
    }
}

fn render_cols(schema: &TableSchema, set: AttrSet) -> String {
    let mut out = String::new();
    for a in set.iter() {
        if !out.is_empty() {
            out.push(',');
        }
        out.push_str(schema.column_name(a));
    }
    out
}

/// Whether a fact token belongs to the weak-opt-in plane.
fn is_weak_fact(fact: &str) -> bool {
    fact.starts_with("wfd:")
}

fn facts_from_parts(
    schema: &TableSchema,
    pfds: &[MinedFd],
    cfds: &[MinedFd],
    wfds: Option<&[MinedFd]>,
    keys: &MinedKeys,
) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut fd_groups = vec![("pfd", pfds), ("cfd", cfds)];
    if let Some(w) = wfds {
        fd_groups.push(("wfd", w));
    }
    for (tag, fds) in fd_groups {
        for fd in fds {
            for a in fd.rhs.iter() {
                out.insert(format!(
                    "{tag}:{}->{}",
                    render_cols(schema, fd.lhs),
                    schema.column_name(a)
                ));
            }
        }
    }
    for k in &keys.pkeys {
        out.insert(format!("pkey:{}", render_cols(schema, *k)));
    }
    for k in &keys.ckeys {
        out.insert(format!("ckey:{}", render_cols(schema, *k)));
    }
    out
}

/// From-scratch fact set of a table: the minimal possible/certain FDs
/// (one fact per RHS attribute) and minimal possible/certain keys, all
/// bounded by `max_lhs`. This is the reference the hub's incremental
/// shadow state must agree with — harness stream-soundness checks mine
/// a table at an oplog prefix through this function and confirm every
/// streamed event against consecutive prefixes. Output is exactly what
/// a *default* subscriber sees; weak subscribers verify against
/// [`table_facts_with`] instead.
pub fn table_facts(table: &Table, max_lhs: usize) -> BTreeSet<String> {
    table_facts_with(table, max_lhs, false)
}

/// [`table_facts`] with the weak plane included: `include_weak` adds a
/// `wfd:` fact per RHS attribute of each minimal weak FD.
pub fn table_facts_with(table: &Table, max_lhs: usize, include_weak: bool) -> BTreeSet<String> {
    let pfds = mine_fds(
        table,
        MinerConfig::new(Semantics::Possible).with_max_lhs(max_lhs),
    )
    .fds;
    let cfds = mine_fds(
        table,
        MinerConfig::new(Semantics::Certain).with_max_lhs(max_lhs),
    )
    .fds;
    let wfds = include_weak.then(|| {
        mine_fds(
            table,
            MinerConfig::new(Semantics::Weak).with_max_lhs(max_lhs),
        )
        .fds
    });
    let keys = mine_keys_budgeted(table, max_lhs, DEFAULT_CACHE_BUDGET);
    facts_from_parts(table.schema(), &pfds, &cfds, wfds.as_deref(), &keys)
}

/// The hub always mines the full plane (weak included); subscriber
/// filtering decides who sees the `wfd:` lines.
fn miner_facts(m: &mut IncrementalMiner, max_lhs: usize) -> BTreeSet<String> {
    let pfds = m.mine_fds(Semantics::Possible, max_lhs, DEFAULT_CACHE_BUDGET);
    let cfds = m.mine_fds(Semantics::Certain, max_lhs, DEFAULT_CACHE_BUDGET);
    let wfds = m.mine_fds(Semantics::Weak, max_lhs, DEFAULT_CACHE_BUDGET);
    let keys = m.mine_keys(max_lhs, DEFAULT_CACHE_BUDGET);
    let schema = m.schema().clone();
    facts_from_parts(&schema, &pfds, &cfds, Some(&wfds), &keys)
}

/// Messages into the hub thread. Frames, registrations and barriers
/// travel the same FIFO channel, so the hub's serial processing order
/// defines each subscription's exact baseline point.
#[derive(Debug)]
pub(crate) enum HubMsg {
    /// A commit batch, durable on its shard: `(epoch, payload)` pairs.
    Batch(Vec<(u64, String)>),
    /// A new subscriber.
    Register(Arc<SubscriberShared>),
    /// A subscriber dropped its handle.
    Unregister(u64),
    /// Test/smoke fence: reply once all prior messages are processed.
    Barrier(Sender<()>),
}

/// State shared between a [`Subscription`] handle and the hub.
#[derive(Debug)]
pub(crate) struct SubscriberShared {
    id: u64,
    filter: Option<String>,
    /// Receive `wfd:` weak-FD facts (`WATCH <t|*> weak`).
    weak: bool,
    cap: usize,
    queue: Mutex<VecDeque<String>>,
    dropped: AtomicU64,
    reported: AtomicU64,
    closed: AtomicBool,
}

impl SubscriberShared {
    fn watches(&self, table: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| f == table)
    }

    fn push(&self, line: String) {
        let mut q = self.queue.lock().unwrap();
        if q.len() >= self.cap {
            drop(q);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            sqlnf_obs::count!("serve.watch.dropped");
        } else {
            q.push_back(line);
        }
    }
}

/// A live subscription. Dropping it (or the session that owns it)
/// unregisters from the hub; queued events are discarded.
#[derive(Debug)]
pub struct Subscription {
    shared: Arc<SubscriberShared>,
    tx: Sender<HubMsg>,
}

impl Subscription {
    /// Pop every queued event line. If the hub dropped events since the
    /// last drain, a trailing `LAGGED <n>` line reports the gap (the
    /// dropped events are newer than the drained ones).
    pub fn drain(&self) -> Vec<String> {
        let mut out: Vec<String> = {
            let mut q = self.shared.queue.lock().unwrap();
            q.drain(..).collect()
        };
        let dropped = self.shared.dropped.load(Ordering::Relaxed);
        let reported = self.shared.reported.load(Ordering::Relaxed);
        if dropped > reported {
            self.shared.reported.store(dropped, Ordering::Relaxed);
            out.push(format!("LAGGED {}", dropped - reported));
        }
        out
    }

    /// Total events ever dropped for this subscriber.
    pub fn lagged(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// The table filter, or `None` for all tables.
    pub fn filter(&self) -> Option<&str> {
        self.shared.filter.as_deref()
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::Relaxed);
        let _ = self.tx.send(HubMsg::Unregister(self.shared.id));
    }
}

/// Owner handle for a store's hub thread. The thread exits when every
/// sender (the handle plus the WAL's listener) is dropped.
#[derive(Debug)]
pub struct WatchHub {
    tx: Sender<HubMsg>,
    next_id: AtomicU64,
    queue_cap: usize,
}

impl WatchHub {
    /// Spawn the hub. `preamble` scripts (recovered history) seed the
    /// shadow state without emitting events; `cursor` is the first
    /// epoch the live store will commit (`GroupWal::epoch_next()` at
    /// store construction).
    pub(crate) fn spawn(preamble: Vec<String>, cursor: u64, queue_cap: usize) -> WatchHub {
        let (tx, rx) = mpsc::channel();
        thread::Builder::new()
            .name("sqlnf-watch".into())
            .spawn(move || hub_main(rx, preamble, cursor))
            .expect("spawn watch hub");
        WatchHub {
            tx,
            next_id: AtomicU64::new(1),
            queue_cap,
        }
    }

    /// A sender for the WAL commit path.
    pub(crate) fn sender(&self) -> Sender<HubMsg> {
        self.tx.clone()
    }

    /// Register a subscriber; `filter` limits it to one table. The
    /// subscriber sees the default fact plane (no `wfd:` lines).
    pub fn subscribe(&self, filter: Option<String>) -> Subscription {
        self.subscribe_opts(filter, false)
    }

    /// [`subscribe`](Self::subscribe) with the weak plane opt-in:
    /// `weak` subscribers additionally receive `wfd:` fact events.
    pub fn subscribe_opts(&self, filter: Option<String>, weak: bool) -> Subscription {
        let shared = Arc::new(SubscriberShared {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            filter,
            weak,
            cap: self.queue_cap,
            queue: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
            reported: AtomicU64::new(0),
            closed: AtomicBool::new(false),
        });
        let _ = self.tx.send(HubMsg::Register(shared.clone()));
        Subscription {
            shared,
            tx: self.tx.clone(),
        }
    }

    /// Block until the hub has processed every message sent before this
    /// call. Deterministic fence for tests and the CI smoke: after a
    /// barrier, every durable epoch notified so far is reflected in
    /// subscriber queues.
    pub fn barrier(&self) {
        let (tx, rx) = mpsc::channel();
        if self.tx.send(HubMsg::Barrier(tx)).is_ok() {
            let _ = rx.recv();
        }
    }
}

struct Hub {
    cursor: u64,
    pending: BTreeMap<u64, String>,
    miners: BTreeMap<String, IncrementalMiner>,
    /// Last published fact set, per *watched* table. Presence of a key
    /// is what turns mining on for that table; unwatched tables only
    /// pay the cheap delta apply.
    facts: BTreeMap<String, BTreeSet<String>>,
    subs: Vec<Arc<SubscriberShared>>,
}

fn hub_main(rx: Receiver<HubMsg>, preamble: Vec<String>, cursor: u64) {
    let mut hub = Hub {
        cursor,
        pending: BTreeMap::new(),
        miners: BTreeMap::new(),
        facts: BTreeMap::new(),
        subs: Vec::new(),
    };
    for src in &preamble {
        hub.apply_script(src, None);
    }
    while let Ok(msg) = rx.recv() {
        match msg {
            HubMsg::Batch(frames) => {
                for (epoch, payload) in frames {
                    hub.pending.insert(epoch, payload);
                }
                hub.release();
            }
            HubMsg::Register(sub) => hub.register(sub),
            HubMsg::Unregister(id) => hub.unregister(id),
            HubMsg::Barrier(done) => {
                let _ = done.send(());
            }
        }
    }
}

impl Hub {
    /// Apply every contiguously-durable epoch. A missing epoch stalls
    /// the stream: that is the watermark contract, not a bug.
    fn release(&mut self) {
        while let Some(payload) = self.pending.remove(&self.cursor) {
            let epoch = self.cursor;
            self.cursor += 1;
            self.apply_script(&payload, Some(epoch));
        }
    }

    fn watched(&self, table: &str) -> bool {
        self.subs
            .iter()
            .any(|s| !s.closed.load(Ordering::Relaxed) && s.watches(table))
    }

    /// Apply one committed script to the shadow state. With
    /// `epoch = None` (recovery preamble) state is updated silently;
    /// otherwise watched tables are re-mined and fact diffs published.
    fn apply_script(&mut self, src: &str, epoch: Option<u64>) {
        // Frames were parsed and admitted by the server before they
        // were logged, so a parse failure here can only mean a torn
        // payload; skip it rather than poison the hub.
        let Ok(stmts) = parse_script(src) else { return };
        for stmt in stmts {
            match stmt {
                Statement::CreateTable { schema, .. } => {
                    let name = schema.name().to_string();
                    self.miners
                        .insert(name.clone(), IncrementalMiner::new(schema));
                    if let Some(e) = epoch {
                        if self.watched(&name) {
                            // Baseline is "table absent" = no facts;
                            // the empty table's trivial facts stream
                            // as the creation event.
                            self.facts.insert(name.clone(), BTreeSet::new());
                            self.publish(e, &name);
                        }
                    }
                }
                Statement::Insert { table, rows } => {
                    let applied = match self.miners.get_mut(&table) {
                        Some(m) => {
                            for t in rows {
                                m.insert(t);
                            }
                            true
                        }
                        None => false,
                    };
                    if applied {
                        if let Some(e) = epoch {
                            if self.facts.contains_key(&table) {
                                self.publish(e, &table);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Re-mine `table` and stream the fact diff for `epoch`.
    fn publish(&mut self, epoch: u64, table: &str) {
        let now = match self.miners.get_mut(table) {
            Some(miner) => miner_facts(miner, WATCH_MAX_LHS),
            None => return,
        };
        let before = self.facts.get(table).cloned().unwrap_or_default();
        if now != before {
            // Each line is tagged with whether it belongs to the
            // weak-opt-in plane; default subscribers skip those, so
            // their streams are byte-identical to a weak-unaware hub's.
            let mut lines: Vec<(bool, String)> = Vec::new();
            for fact in before.difference(&now) {
                let line = WatchEvent {
                    epoch,
                    table: table.to_string(),
                    appeared: false,
                    fact: fact.clone(),
                }
                .line();
                lines.push((is_weak_fact(fact), line));
            }
            for fact in now.difference(&before) {
                let line = WatchEvent {
                    epoch,
                    table: table.to_string(),
                    appeared: true,
                    fact: fact.clone(),
                }
                .line();
                lines.push((is_weak_fact(fact), line));
            }
            sqlnf_obs::count!("serve.watch.events", lines.len() as u64);
            for sub in &self.subs {
                if !sub.closed.load(Ordering::Relaxed) && sub.watches(table) {
                    for (weak_fact, line) in &lines {
                        if *weak_fact && !sub.weak {
                            continue;
                        }
                        sub.push(line.clone());
                    }
                }
            }
        }
        self.facts.insert(table.to_string(), now);
    }

    fn register(&mut self, sub: Arc<SubscriberShared>) {
        // Baseline silently: the subscriber starts from the fact set at
        // the current cursor and only sees diffs for later epochs.
        for (name, miner) in self.miners.iter_mut() {
            if sub.watches(name) && !self.facts.contains_key(name) {
                let baseline = miner_facts(miner, WATCH_MAX_LHS);
                self.facts.insert(name.clone(), baseline);
            }
        }
        self.subs.push(sub);
    }

    fn unregister(&mut self, id: u64) {
        self.subs
            .retain(|s| s.id != id && !s.closed.load(Ordering::Relaxed));
        // Stop mining tables nobody watches any more.
        let keep: Vec<String> = self
            .facts
            .keys()
            .filter(|name| self.watched(name))
            .cloned()
            .collect();
        self.facts.retain(|name, _| keep.contains(name));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(epoch: u64, payload: &str) -> (u64, String) {
        (epoch, payload.to_string())
    }

    fn send(hub: &WatchHub, frames: Vec<(u64, String)>) {
        hub.sender().send(HubMsg::Batch(frames)).unwrap();
    }

    #[test]
    fn event_line_round_trips() {
        let ev = WatchEvent {
            epoch: 42,
            table: "t".into(),
            appeared: true,
            fact: "pfd:a,b->c".into(),
        };
        assert_eq!(ev.line(), "EVENT 42 t +pfd:a,b->c");
        assert_eq!(WatchEvent::parse(&ev.line()), Some(ev.clone()));
        let gone = WatchEvent {
            appeared: false,
            ..ev
        };
        assert_eq!(WatchEvent::parse(&gone.line()), Some(gone));
        assert_eq!(WatchEvent::parse("OK 0 fine"), None);
    }

    #[test]
    fn contiguous_release_streams_fact_diffs_in_epoch_order() {
        let hub = WatchHub::spawn(Vec::new(), 1, DEFAULT_WATCH_QUEUE);
        let sub = hub.subscribe(None);
        // Out-of-order delivery: epochs 2 and 3 arrive before 1.
        send(
            &hub,
            vec![
                frame(2, "INSERT INTO t VALUES (1, 1);"),
                frame(3, "INSERT INTO t VALUES (1, 2);"),
            ],
        );
        hub.barrier();
        assert!(sub.drain().is_empty(), "nothing released before epoch 1");
        send(&hub, vec![frame(1, "CREATE TABLE t (a INT, b INT);")]);
        hub.barrier();
        let lines = sub.drain();
        let events: Vec<WatchEvent> = lines
            .iter()
            .map(|l| WatchEvent::parse(l).expect("event line"))
            .collect();
        assert!(!events.is_empty());
        // Epochs appear in commit order.
        let epochs: Vec<u64> = events.iter().map(|e| e.epoch).collect();
        let mut sorted = epochs.clone();
        sorted.sort_unstable();
        assert_eq!(epochs, sorted);
        assert_eq!(epochs.first(), Some(&1));
        assert_eq!(epochs.last(), Some(&3));
        // Epoch 3 inserts (1,2) next to (1,1): b was constant (the
        // minimal FD ∅ → b), and stops being determined at all.
        assert!(events
            .iter()
            .any(|e| e.epoch == 3 && !e.appeared && e.fact == "pfd:->b"));
    }

    #[test]
    fn streamed_facts_match_from_scratch_prefixes() {
        let stmts = [
            "CREATE TABLE t (a INT, b INT, c INT);",
            "INSERT INTO t VALUES (1, 1, 1);",
            "INSERT INTO t VALUES (1, 2, 1);",
            "INSERT INTO t VALUES (2, 2, NULL);",
            "INSERT INTO t VALUES (2, 2, 2);",
        ];
        let hub = WatchHub::spawn(Vec::new(), 1, DEFAULT_WATCH_QUEUE);
        let sub = hub.subscribe(Some("t".into()));
        send(
            &hub,
            stmts
                .iter()
                .enumerate()
                .map(|(i, s)| frame(i as u64 + 1, s))
                .collect(),
        );
        hub.barrier();
        // Replay the same prefixes from scratch and diff.
        let mut expected = Vec::new();
        let mut db = Database::new();
        let mut before = BTreeSet::new();
        for (i, s) in stmts.iter().enumerate() {
            db.run_script(s).unwrap();
            let now = table_facts(db.table("t").unwrap().data(), WATCH_MAX_LHS);
            for fact in before.difference(&now) {
                expected.push(format!("EVENT {} t -{fact}", i + 1));
            }
            for fact in now.difference(&before) {
                expected.push(format!("EVENT {} t +{fact}", i + 1));
            }
            before = now;
        }
        assert_eq!(sub.drain(), expected);
    }

    #[test]
    fn weak_subscriber_streams_match_weak_from_scratch_prefixes() {
        let stmts = [
            "CREATE TABLE t (a INT, b INT, c INT);",
            "INSERT INTO t VALUES (1, 1, 1);",
            "INSERT INTO t VALUES (1, NULL, 1);",
            "INSERT INTO t VALUES (1, 2, NULL);",
            "INSERT INTO t VALUES (2, 2, 2);",
        ];
        let hub = WatchHub::spawn(Vec::new(), 1, DEFAULT_WATCH_QUEUE);
        let weak_sub = hub.subscribe_opts(Some("t".into()), true);
        let plain_sub = hub.subscribe(Some("t".into()));
        send(
            &hub,
            stmts
                .iter()
                .enumerate()
                .map(|(i, s)| frame(i as u64 + 1, s))
                .collect(),
        );
        hub.barrier();
        // Replay the prefixes from scratch, once per plane, and diff.
        let mut expect_weak = Vec::new();
        let mut expect_plain = Vec::new();
        let mut db = Database::new();
        let (mut before_weak, mut before_plain) = (BTreeSet::new(), BTreeSet::new());
        for (i, s) in stmts.iter().enumerate() {
            db.run_script(s).unwrap();
            let data = db.table("t").unwrap().data();
            for (include_weak, before, expected) in [
                (true, &mut before_weak, &mut expect_weak),
                (false, &mut before_plain, &mut expect_plain),
            ] {
                let now = table_facts_with(data, WATCH_MAX_LHS, include_weak);
                for fact in before.difference(&now) {
                    expected.push(format!("EVENT {} t -{fact}", i + 1));
                }
                for fact in now.difference(before) {
                    expected.push(format!("EVENT {} t +{fact}", i + 1));
                }
                *before = now;
            }
        }
        let weak_lines = weak_sub.drain();
        assert!(
            weak_lines.iter().any(|l| l.contains("+wfd:")),
            "weak plane emitted nothing: {weak_lines:?}"
        );
        assert_eq!(weak_lines, expect_weak);
        // The default subscriber's stream is byte-identical to a
        // weak-unaware hub's: no wfd lines, same ordering.
        let plain_lines = plain_sub.drain();
        assert!(plain_lines.iter().all(|l| !l.contains("wfd:")));
        assert_eq!(plain_lines, expect_plain);
    }

    #[test]
    fn bounded_queue_lags_and_reports_once() {
        let hub = WatchHub::spawn(Vec::new(), 1, 4);
        let sub = hub.subscribe(None);
        let mut frames = vec![frame(1, "CREATE TABLE t (a INT, b INT);")];
        for i in 0..20u64 {
            frames.push(frame(
                i + 2,
                &format!("INSERT INTO t VALUES ({}, {});", i % 3, i),
            ));
        }
        send(&hub, frames);
        hub.barrier();
        let lines = sub.drain();
        assert_eq!(lines.len(), 5, "4 queued events + LAGGED: {lines:?}");
        let last = lines.last().unwrap();
        assert!(last.starts_with("LAGGED "), "{last}");
        let n: u64 = last["LAGGED ".len()..].parse().unwrap();
        assert_eq!(n, sub.lagged());
        assert!(n > 0);
        // Drained and reported: a second drain is empty, no LAGGED spam.
        assert!(sub.drain().is_empty());
    }

    #[test]
    fn filtered_subscriber_only_sees_its_table() {
        let hub = WatchHub::spawn(Vec::new(), 1, DEFAULT_WATCH_QUEUE);
        let sub = hub.subscribe(Some("u".into()));
        send(
            &hub,
            vec![
                frame(1, "CREATE TABLE t (a INT, b INT);"),
                frame(2, "CREATE TABLE u (x INT, y INT);"),
                frame(3, "INSERT INTO t VALUES (1, 1);"),
                frame(4, "INSERT INTO u VALUES (7, 7);"),
            ],
        );
        hub.barrier();
        let events: Vec<WatchEvent> = sub
            .drain()
            .iter()
            .map(|l| WatchEvent::parse(l).unwrap())
            .collect();
        assert!(!events.is_empty());
        assert!(events.iter().all(|e| e.table == "u"));
    }

    #[test]
    fn preamble_seeds_baseline_without_events() {
        let hub = WatchHub::spawn(
            vec![
                "CREATE TABLE t (a INT, b INT);".to_string(),
                "INSERT INTO t VALUES (1, 1);".to_string(),
            ],
            3,
            DEFAULT_WATCH_QUEUE,
        );
        let sub = hub.subscribe(None);
        hub.barrier();
        assert!(sub.drain().is_empty(), "recovered history is the baseline");
        send(&hub, vec![frame(3, "INSERT INTO t VALUES (1, 2);")]);
        hub.barrier();
        let lines = sub.drain();
        assert!(
            lines.contains(&"EVENT 3 t -pfd:->b".to_string()),
            "{lines:?}"
        );
    }

    #[test]
    fn drop_unregisters_and_disables_mining() {
        let hub = WatchHub::spawn(Vec::new(), 1, DEFAULT_WATCH_QUEUE);
        let sub = hub.subscribe(None);
        send(&hub, vec![frame(1, "CREATE TABLE t (a INT, b INT);")]);
        hub.barrier();
        assert!(!sub.drain().is_empty());
        drop(sub);
        let sub2 = hub.subscribe(Some("other".into()));
        send(&hub, vec![frame(2, "INSERT INTO t VALUES (1, 1);")]);
        hub.barrier();
        assert!(sub2.drain().is_empty());
    }
}
