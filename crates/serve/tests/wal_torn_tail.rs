//! Exhaustive torn-tail coverage for the sharded, epoch-stamped log:
//! generation logs are truncated at *every* byte offset — per shard,
//! independently — and recovery must never panic and must always yield
//! exactly the durable epoch prefix of the admitted statements. Covered
//! at the frame level (`wal::replay`), at the store level
//! (`Store::open` + export), across shards, with a preceding snapshot
//! generation, and through a crash between `write` and `fsync`.

use sqlnf_model::prelude::*;
use sqlnf_serve::wal::{self, Wal};
use sqlnf_serve::{Store, StoreOptions};
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sqlnf_torn_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The admitted history the logs are built from: DDL then inserts of
/// varying widths (multi-row, nulls, quoted text) so frame lengths
/// differ and truncation offsets land in every part of a frame —
/// marker, length digits, epoch digits, header newline, payload,
/// trailing newline.
fn history() -> Vec<String> {
    let mut stmts =
        vec!["CREATE TABLE t (a INT NOT NULL, b TEXT, CONSTRAINT k CERTAIN KEY (a));".to_owned()];
    for i in 0..6 {
        stmts.push(format!(
            "INSERT INTO t VALUES ({}, 'x{}'), ({}, NULL);",
            2 * i,
            i,
            2 * i + 1
        ));
    }
    stmts
}

/// Replays `stmts` through a fresh engine and renders the result.
fn reference_export(stmts: &[String]) -> String {
    let mut db = Database::new();
    for s in stmts {
        db.run_script(s).unwrap();
    }
    db.export_script()
}

/// Frame-level: every truncation offset of a single-shard generation-0
/// log replays to a contiguous epoch prefix, and re-opening the
/// damaged log (which truncates the tail in place) accepts further
/// appends at the next epoch.
#[test]
fn every_offset_replays_to_a_prefix() {
    let stmts = history();
    let build_dir = tmp_dir("build");
    let mut w = Wal::open(&build_dir, 0, 0).unwrap();
    for (i, s) in stmts.iter().enumerate() {
        w.append(i as u64 + 1, s).unwrap();
    }
    drop(w);
    let image = std::fs::read(wal::wal_path(&build_dir, 0, 0)).unwrap();
    assert!(image.len() > 200, "need a multi-record log");

    let dir = tmp_dir("offsets");
    let path = wal::wal_path(&dir, 0, 0);
    let mut seen_lengths = std::collections::BTreeSet::new();
    for cut in 0..=image.len() {
        std::fs::write(&path, &image[..cut]).unwrap();
        let back = wal::replay(&path).unwrap();
        assert!(back.len() <= stmts.len(), "cut {cut}");
        for (i, (epoch, payload)) in back.iter().enumerate() {
            assert_eq!(*epoch, i as u64 + 1, "cut {cut}: epochs must be dense");
            assert_eq!(*payload, stmts[i], "cut {cut} must yield a prefix");
        }
        seen_lengths.insert(back.len());
        // Re-opening truncates the torn tail and appends continue.
        let mut reopened = Wal::open(&dir, 0, 0).unwrap();
        assert_eq!(reopened.records(), back.len() as u64, "cut {cut}");
        reopened
            .append(back.len() as u64 + 1, "INSERT INTO t VALUES (99, 'tail');")
            .unwrap();
        let healed = wal::replay(&path).unwrap();
        assert_eq!(healed.len(), back.len() + 1, "cut {cut}");
        assert_eq!(
            healed.last().unwrap().1,
            "INSERT INTO t VALUES (99, 'tail');"
        );
    }
    // The sweep hit every possible prefix length, 0..=all.
    assert_eq!(seen_lengths.len(), stmts.len() + 1);
    let _ = std::fs::remove_dir_all(&build_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Store-level, single shard, no snapshot: recovery at every offset
/// reproduces the reference engine's replay of exactly the surviving
/// prefix.
#[test]
fn store_recovers_the_prefix_state_at_every_offset() {
    let stmts = history();
    let build_dir = tmp_dir("store_build");
    let mut w = Wal::open(&build_dir, 0, 0).unwrap();
    for (i, s) in stmts.iter().enumerate() {
        w.append(i as u64 + 1, s).unwrap();
    }
    drop(w);
    let image = std::fs::read(wal::wal_path(&build_dir, 0, 0)).unwrap();

    let dir = tmp_dir("store_offsets");
    let path = wal::wal_path(&dir, 0, 0);
    for cut in 0..=image.len() {
        std::fs::write(&path, &image[..cut]).unwrap();
        let surviving = wal::replay(&path).unwrap();
        let store = Store::open(&dir, 0).unwrap_or_else(|e| panic!("cut {cut}: {e}"));
        assert_eq!(
            store.export_script(),
            reference_export(&stmts[..surviving.len()]),
            "cut {cut}"
        );
    }
    let _ = std::fs::remove_dir_all(&build_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The sharded sweep: a history spread across several shard logs is
/// damaged one shard at a time, at every byte offset of that shard,
/// while the other shards stay pristine. Recovery must replay exactly
/// the longest contiguous global-epoch prefix that survived — a tear
/// in one shard's tail censors every *later* epoch in other shards,
/// but never an earlier one.
#[test]
fn each_shard_truncated_independently_replays_the_epoch_prefix() {
    let opts = StoreOptions {
        wal_shards: 3,
        ..StoreOptions::default()
    };
    // Several tables so statements actually spread across shard files;
    // epochs are assigned in execution order, so statement i carries
    // epoch i+1 regardless of which shard its table hashes to.
    let mut stmts = Vec::new();
    for t in ["alpha", "bravo", "charlie", "delta"] {
        stmts.push(format!(
            "CREATE TABLE {t} (a INT NOT NULL, b TEXT, CONSTRAINT k CERTAIN KEY (a));"
        ));
    }
    for i in 0..4 {
        for t in ["alpha", "bravo", "charlie", "delta"] {
            stmts.push(format!("INSERT INTO {t} VALUES ({i}, 'r{i}');"));
        }
    }

    let build_dir = tmp_dir("shard_build");
    {
        let store = Store::open_with(&build_dir, opts.clone()).unwrap();
        for s in &stmts {
            store.execute_sql(s).unwrap();
        }
        store.sync().unwrap();
    }
    let shards: Vec<(u64, Vec<u8>)> = wal::shard_logs(&build_dir, 0)
        .unwrap()
        .into_iter()
        .map(|(shard, path)| (shard, std::fs::read(path).unwrap()))
        .collect();
    assert!(
        shards.iter().filter(|(_, img)| !img.is_empty()).count() >= 2,
        "history must span multiple shard files for the sweep to mean anything"
    );

    let dir = tmp_dir("shard_offsets");
    for victim in 0..shards.len() {
        for cut in 0..=shards[victim].1.len() {
            // Restore every shard pristine, then tear one.
            for (i, (shard, image)) in shards.iter().enumerate() {
                let body = if i == victim {
                    &image[..cut]
                } else {
                    &image[..]
                };
                std::fs::write(wal::wal_path(&dir, 0, *shard), body).unwrap();
            }
            // The durable prefix is what a contiguous epoch merge of
            // the surviving frames yields.
            let frames: Vec<_> = shards
                .iter()
                .map(|(shard, _)| wal::replay(&wal::wal_path(&dir, 0, *shard)).unwrap())
                .collect();
            let (durable, last) = wal::merge_by_epoch(frames, 1);
            assert_eq!(durable.len() as u64, last, "shard {victim} cut {cut}");
            assert!(durable.len() <= stmts.len(), "shard {victim} cut {cut}");
            // The logged payloads are the store's canonical rendering,
            // not the input bytes — but epoch i is statement i, so the
            // recovered state must equal a replay of the input prefix.
            let store = Store::open_with(&dir, opts.clone())
                .unwrap_or_else(|e| panic!("shard {victim} cut {cut}: {e}"));
            assert_eq!(
                store.export_script(),
                reference_export(&stmts[..durable.len()]),
                "shard {victim} cut {cut}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&build_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Store-level, with a snapshot generation in front: the snapshot's
/// statements are immune to the live log's torn tail, so recovery at
/// every offset equals snapshot state + surviving log prefix.
#[test]
fn snapshot_generation_survives_any_log_damage() {
    let stmts = history();
    let (snap_len, generation) = (3usize, 5u64);
    let snapshot_stmts = &stmts[..snap_len];
    let log_stmts = &stmts[snap_len..];
    let epoch_base = snap_len as u64 + 1;

    let dir = tmp_dir("snap_gen");
    let mut snapshot = wal::snapshot_header(generation, epoch_base);
    snapshot.push_str(&reference_export(snapshot_stmts));
    std::fs::write(dir.join(wal::SNAPSHOT_FILE), &snapshot).unwrap();
    let mut w = Wal::open(&dir, generation, 0).unwrap();
    for (i, s) in log_stmts.iter().enumerate() {
        w.append(epoch_base + i as u64, s).unwrap();
    }
    drop(w);
    let path = wal::wal_path(&dir, generation, 0);
    let image = std::fs::read(&path).unwrap();

    for cut in (0..=image.len()).rev() {
        std::fs::write(&path, &image[..cut]).unwrap();
        let surviving = wal::replay(&path).unwrap();
        let store = Store::open(&dir, 0).unwrap_or_else(|e| panic!("cut {cut}: {e}"));
        assert_eq!(
            store.export_script(),
            reference_export(&stmts[..snap_len + surviving.len()]),
            "cut {cut}"
        );
        // Even with the whole log gone, the snapshot holds.
        if cut == 0 {
            assert_eq!(store.export_script(), reference_export(snapshot_stmts));
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash during a commit batch: the fsync fails *after* the frames hit
/// the file. Every waiter in that batch must see the error (never an
/// ack), the frames must be erased from the shard, and recovery must
/// come back with exactly the durable history — proving an ack is only
/// ever issued for fsynced frames.
#[test]
fn crash_between_write_and_fsync_acks_nothing_undurable() {
    let dir = tmp_dir("crash_commit");
    let opts = StoreOptions {
        wal_shards: 2,
        ..StoreOptions::default()
    };
    {
        let store = Store::open_with(&dir, opts.clone()).unwrap();
        store.enable_oplog();
        store
            .execute_sql("CREATE TABLE t (a INT NOT NULL, CONSTRAINT k CERTAIN KEY (a));")
            .unwrap();
        store.execute_sql("INSERT INTO t VALUES (1);").unwrap();
        let durable = store.oplog();
        assert_eq!(durable.len(), 2);

        store.inject_fsync_fault_once();
        let err = store.execute_sql("INSERT INTO t VALUES (2);").unwrap_err();
        assert!(err.to_string().contains("not durable"), "{err}");
        // The failed batch was never acked and never reached the oplog.
        use std::sync::atomic::Ordering;
        assert_eq!(
            store.stats.admitted.load(Ordering::Relaxed),
            2,
            "ack count must exclude the lost batch"
        );
        assert!(store.stats.rejected.load(Ordering::Relaxed) >= 1);
        assert_eq!(store.oplog(), durable);
    }
    // Recovery sees only the durable history: the crashed batch's
    // frames were rolled back from the shard file before the store
    // reported the error.
    let reborn = Store::open_with(&dir, opts).unwrap();
    assert_eq!(
        reborn.export_script(),
        reference_export(&[
            "CREATE TABLE t (a INT NOT NULL, CONSTRAINT k CERTAIN KEY (a));".to_owned(),
            "INSERT INTO t VALUES (1);".to_owned(),
        ]),
    );
    let _ = std::fs::remove_dir_all(&dir);
}
