//! Exhaustive torn-tail coverage: a multi-record generation log is
//! truncated at *every* byte offset, and recovery must never panic and
//! must always yield a clean prefix of the admitted statements — at
//! the frame level (`wal::replay`) and at the store level
//! (`Store::open` + export), both with and without a preceding
//! snapshot generation.

use sqlnf_model::prelude::*;
use sqlnf_serve::wal::{self, Wal};
use sqlnf_serve::Store;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sqlnf_torn_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The admitted history the logs are built from: DDL then inserts of
/// varying widths (multi-row, nulls, quoted text) so frame lengths
/// differ and truncation offsets land in every part of a frame —
/// marker, length digits, header newline, payload, trailing newline.
fn history() -> Vec<String> {
    let mut stmts =
        vec!["CREATE TABLE t (a INT NOT NULL, b TEXT, CONSTRAINT k CERTAIN KEY (a));".to_owned()];
    for i in 0..6 {
        stmts.push(format!(
            "INSERT INTO t VALUES ({}, 'x{}'), ({}, NULL);",
            2 * i,
            i,
            2 * i + 1
        ));
    }
    stmts
}

/// Replays `stmts` through a fresh engine and renders the result.
fn reference_export(stmts: &[String]) -> String {
    let mut db = Database::new();
    for s in stmts {
        db.run_script(s).unwrap();
    }
    db.export_script()
}

/// Frame-level: every truncation offset of a generation-0 log replays
/// to a prefix, and re-opening the damaged log (which truncates the
/// tail in place) accepts further appends.
#[test]
fn every_offset_replays_to_a_prefix() {
    let stmts = history();
    let build_dir = tmp_dir("build");
    let mut w = Wal::open(&build_dir, 0).unwrap();
    for s in &stmts {
        w.append(s).unwrap();
    }
    drop(w);
    let image = std::fs::read(wal::wal_path(&build_dir, 0)).unwrap();
    assert!(image.len() > 200, "need a multi-record log");

    let dir = tmp_dir("offsets");
    let path = wal::wal_path(&dir, 0);
    let mut seen_lengths = std::collections::BTreeSet::new();
    for cut in 0..=image.len() {
        std::fs::write(&path, &image[..cut]).unwrap();
        let back = wal::replay(&path).unwrap();
        assert!(back.len() <= stmts.len(), "cut {cut}");
        assert_eq!(
            back[..],
            stmts[..back.len()],
            "cut {cut} must yield a prefix"
        );
        seen_lengths.insert(back.len());
        // Re-opening truncates the torn tail and appends continue.
        let mut reopened = Wal::open(&dir, 0).unwrap();
        assert_eq!(reopened.records(), back.len() as u64, "cut {cut}");
        reopened
            .append("INSERT INTO t VALUES (99, 'tail');")
            .unwrap();
        let healed = wal::replay(&path).unwrap();
        assert_eq!(healed.len(), back.len() + 1, "cut {cut}");
        assert_eq!(healed.last().unwrap(), "INSERT INTO t VALUES (99, 'tail');");
    }
    // The sweep hit every possible prefix length, 0..=all.
    assert_eq!(seen_lengths.len(), stmts.len() + 1);
    let _ = std::fs::remove_dir_all(&build_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Store-level, no snapshot: recovery at every offset reproduces the
/// reference engine's replay of exactly the surviving prefix.
#[test]
fn store_recovers_the_prefix_state_at_every_offset() {
    let stmts = history();
    let build_dir = tmp_dir("store_build");
    let mut w = Wal::open(&build_dir, 0).unwrap();
    for s in &stmts {
        w.append(s).unwrap();
    }
    drop(w);
    let image = std::fs::read(wal::wal_path(&build_dir, 0)).unwrap();

    let dir = tmp_dir("store_offsets");
    let path = wal::wal_path(&dir, 0);
    for cut in 0..=image.len() {
        std::fs::write(&path, &image[..cut]).unwrap();
        let surviving = wal::replay(&path).unwrap();
        let store = Store::open(&dir, 0).unwrap_or_else(|e| panic!("cut {cut}: {e}"));
        assert_eq!(
            store.export_script(),
            reference_export(&stmts[..surviving.len()]),
            "cut {cut}"
        );
    }
    let _ = std::fs::remove_dir_all(&build_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Store-level, with a snapshot generation in front: the snapshot's
/// statements are immune to the live log's torn tail, so recovery at
/// every offset equals snapshot state + surviving log prefix.
#[test]
fn snapshot_generation_survives_any_log_damage() {
    let stmts = history();
    let (snap_len, generation) = (3usize, 5u64);
    let snapshot_stmts = &stmts[..snap_len];
    let log_stmts = &stmts[snap_len..];

    let dir = tmp_dir("snap_gen");
    let mut snapshot = wal::snapshot_header(generation);
    snapshot.push_str(&reference_export(snapshot_stmts));
    std::fs::write(dir.join(wal::SNAPSHOT_FILE), &snapshot).unwrap();
    let mut w = Wal::open(&dir, generation).unwrap();
    for s in log_stmts {
        w.append(s).unwrap();
    }
    drop(w);
    let path = wal::wal_path(&dir, generation);
    let image = std::fs::read(&path).unwrap();

    for cut in (0..=image.len()).rev() {
        std::fs::write(&path, &image[..cut]).unwrap();
        let surviving = wal::replay(&path).unwrap();
        let store = Store::open(&dir, 0).unwrap_or_else(|e| panic!("cut {cut}: {e}"));
        assert_eq!(
            store.export_script(),
            reference_export(&stmts[..snap_len + surviving.len()]),
            "cut {cut}"
        );
        // Even with the whole log gone, the snapshot holds.
        if cut == 0 {
            assert_eq!(store.export_script(), reference_export(snapshot_stmts));
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
