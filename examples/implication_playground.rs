//! Reasoning about constraints: closures, implication, axiomatic
//! proofs, and counterexample witnesses — Section 4 of the paper as an
//! interactive-style tour.
//!
//! Run with `cargo run --example implication_playground`.

use sqlnf::core::axioms::DerivationEngine;
use sqlnf::core::witness::violation_witness;
use sqlnf::prelude::*;

fn main() {
    // PURCHASE = oicp with T_S = ocp and Σ = {oi →_s c, ic →_w p}.
    let schema = TableSchema::new(
        "purchase",
        ["order_id", "item", "catalog", "price"],
        &["order_id", "catalog", "price"],
    );
    let oi = schema.set(&["order_id", "item"]);
    let sigma = Sigma::new()
        .with(Fd::possible(oi, schema.set(&["catalog"])))
        .with(Fd::certain(
            schema.set(&["item", "catalog"]),
            schema.set(&["price"]),
        ));
    println!("Σ = {}\n", sigma.display(&schema));

    // Closures decide implication (Theorem 2).
    let r = Reasoner::new(schema.attrs(), schema.nfs(), &sigma);
    println!(
        "p-closure of {{order_id,item}}: {}",
        schema.display_set(r.p_closure(oi))
    );
    println!(
        "c-closure of {{order_id,item}}: {}",
        schema.display_set(r.c_closure(oi))
    );

    let implied = Fd::possible(oi, schema.set(&["price"]));
    let not_implied = Fd::certain(oi, schema.set(&["price"]));
    println!(
        "\nΣ ⊨ {} ?  {}",
        implied.display(&schema),
        r.implies_fd(&implied)
    );
    println!(
        "Σ ⊨ {} ?  {}",
        not_implied.display(&schema),
        r.implies_fd(&not_implied)
    );

    // A machine-checked proof for the implied FD (Theorem 1's axioms).
    let engine = DerivationEngine::saturate(schema.attrs(), schema.nfs(), &sigma);
    println!("\nproof of {}:", implied.display(&schema));
    print!(
        "{}",
        engine
            .render_proof(&Constraint::Fd(implied), &schema)
            .expect("implied, so derivable")
    );

    // A two-tuple counterexample for the non-implied one (Lemma 2).
    let witness = violation_witness(&r, &Constraint::Fd(not_implied))
        .expect("not implied, so a witness exists");
    let table = witness.into_table(schema.clone());
    println!(
        "\ncounterexample for {}:\n{table}",
        not_implied.display(&schema)
    );
    assert!(satisfies_all(&table, &sigma));
    assert!(!satisfies_fd(&table, &not_implied));

    // Keys interact with FDs (Section 4.2): p⟨oic⟩ + oi →_s c ⊢ p⟨oi⟩.
    let sigma2 = Sigma::new()
        .with(Fd::possible(oi, schema.set(&["catalog"])))
        .with(Key::possible(schema.set(&["order_id", "item", "catalog"])));
    let r2 = Reasoner::new(schema.attrs(), schema.nfs(), &sigma2);
    let pkey = Key::possible(oi);
    println!(
        "\n{} ∪ {{p<order_id,item,catalog>}} ⊨ {} ?  {}",
        Fd::possible(oi, schema.set(&["catalog"])).display(&schema),
        pkey.display(&schema),
        r2.implies_key(&pkey)
    );
    // …because catalog is NOT NULL (key-Null-transitivity). Without it:
    let relaxed = TableSchema::new(
        "purchase",
        ["order_id", "item", "catalog", "price"],
        &["order_id", "price"],
    );
    let r3 = Reasoner::new(relaxed.attrs(), relaxed.nfs(), &sigma2);
    println!(
        "same question with catalog nullable:  {}",
        r3.implies_key(&pkey)
    );
}
