//! A schema advisor: load a table (here the generated
//! `contact_draft_lookup`; swap in your own CSV), mine its certain FDs,
//! classify them, and normalize the schema with the usable λ-FDs.
//!
//! Run with `cargo run --example mine_and_normalize`.

use sqlnf::datagen::contact::contact_full;
use sqlnf::prelude::*;

fn main() {
    // Any table works here; `table_from_csv("t", &std::fs::read_to_string(path)?)`
    // loads your own data.
    let table = contact_full(2016);
    let schema = table.schema().clone();
    println!(
        "table {} — {} rows × {} columns",
        schema.name(),
        table.len(),
        schema.arity()
    );

    // Mine and classify (LHS capped at 3 attributes).
    let classification = classify_table(&table, 3);
    println!(
        "mined minimal FDs: {} nn, {} p, {} c, {} total, {} λ",
        classification.nn_fds.len(),
        classification.p_fds.len(),
        classification.c_fds.len(),
        classification.t_fds.len(),
        classification.lambda_fds.len()
    );

    // Show the λ-FDs — the ones Algorithm 3 can decompose by.
    println!("\nusable λ-FDs (with relative projection size):");
    for lam in &classification.lambda_fds {
        println!(
            "  {} ->w {}   ({:.0}% of rows survive projection)",
            schema.display_set(lam.lhs),
            schema.display_set(lam.lhs | lam.rhs),
            lam.relative_projection_size * 100.0
        );
    }

    // Build Σ from the most compressing λ-FD and normalize.
    let best = classification
        .lambda_fds
        .iter()
        .min_by(|a, b| {
            a.relative_projection_size
                .partial_cmp(&b.relative_projection_size)
                .unwrap()
        })
        .expect("the generated table carries a λ-FD");
    let sigma = Sigma::new().with(Fd::certain(best.lhs, best.lhs | best.rhs));
    let design = SchemaDesign::new(schema.clone(), sigma);
    println!("\nnormalizing by {}", design.sigma().display(&schema));
    let normalized = design.normalize().expect("λ-FDs are total");
    let parts = normalized.decomposition.apply(&table);
    for (child, part) in normalized.children.iter().zip(&parts) {
        println!(
            "  {} — {} rows × {} cols (VRNF: {:?})",
            child.schema().name(),
            part.len(),
            child.schema().arity(),
            child.is_vrnf()
        );
    }
    // Each RHS value that used to repeat per duplicate LHS group is now
    // stored once: these are the "sources of potential inconsistency"
    // the paper counts (19 for the real contact_draft_lookup).
    let set_part = parts
        .iter()
        .find(|p| p.len() < table.len())
        .expect("set component compresses");
    let per_rhs_column = table.len() - set_part.len();
    let rhs_cols = (best.rhs - best.lhs).len();
    println!(
        "eliminated {} redundant value occurrences ({} per determined column × {} columns)",
        per_rhs_column * rhs_cols,
        per_rhs_column,
        rhs_cols
    );
    assert!(normalized.decomposition.is_lossless_on(&table));
    println!("lossless ✓ — no information was lost");
}
