//! The paper's running example end to end: why duplicates and nulls
//! break relational normalization, and how certain FDs repair it
//! (Figures 1–5 and Example 3 of Köhler & Link, SIGMOD 2016).
//!
//! Run with `cargo run --example purchase_normalization`.

use sqlnf::datagen::paper;
use sqlnf::prelude::*;
use sqlnf_core::redundancy::redundant_positions;

fn main() {
    // --- Act 1: the idealized relational picture (Figures 1 and 2) ---
    let fig1 = paper::purchase_fig1();
    let s = fig1.schema().clone();
    println!("Figure 1 — purchase:\n{fig1}");
    let ic = s.set(&["item", "catalog"]);
    let price = s.set(&["price"]);
    let fd = Fd::certain(ic, price);
    println!("item,catalog -> price holds: {}", satisfies_fd(&fig1, &fd));
    let sigma = Sigma::new().with(fd);
    let red = redundant_positions(&fig1, &sigma);
    println!("redundant positions (the bold 240s): {}", red.len());

    let (oic, icp) = decompose_instance_by_cfd(&fig1, &fd);
    println!("\nFigure 2 — lossless decomposition:");
    println!("purchase[oic]:\n{oic}");
    println!("purchase[icp]:\n{icp}");
    println!(
        "redundancy gone: {} redundant positions in purchase[icp]",
        redundant_positions(
            &icp,
            &Sigma::new().with(Key::certain(icp.schema().set(&["item", "catalog"])))
        )
        .len()
    );

    // --- Act 2: duplicates decouple FDs from keys (Figure 3) ---
    let fig3 = paper::fig3_duplicates();
    let s3 = fig3.schema().clone();
    let ic3 = s3.set(&["item", "catalog"]);
    let price3 = s3.set(&["price"]);
    println!("\nFigure 3 — duplicates:\n{fig3}");
    println!(
        "every FD holds, e.g. ic -> p: {}; yet ic is no key: {}",
        satisfies_fd(&fig3, &Fd::certain(ic3, price3)),
        satisfies_key(&fig3, &Key::possible(ic3)),
    );

    // --- Act 3: nulls defeat possible FDs (Figure 4) ---
    let fig4 = paper::purchase_fig4();
    println!("\nFigure 4 — NULL catalogs:\n{fig4}");
    println!(
        "p-FD ic ->s p holds: {}, but decomposing by it is lossy:",
        satisfies_fd(&fig4, &Fd::possible(ic, price))
    );
    let (rest4, xy4) = decompose_instance_by_cfd(&fig4, &Fd::certain(ic, price));
    let rejoined = reorder_columns(&join(&rest4, &xy4, "j"), s.column_names());
    println!(
        "  join has {} rows instead of {} — information invented",
        rejoined.len(),
        fig4.len()
    );

    // --- Act 4: certain FDs restore losslessness (Figure 5) ---
    let fig5 = paper::purchase_fig5();
    println!("\nFigure 5 — c-FD ic ->w p holds:\n{fig5}");
    let (rest5, xy5) = decompose_instance_by_cfd(&fig5, &Fd::certain(ic, price));
    let rejoined5 = reorder_columns(&join(&rest5, &xy5, "j"), s.column_names());
    println!("lossless: {}", fig5.multiset_eq(&rejoined5));
    let sigma5 = Sigma::new().with(Fd::certain(
        xy5.schema().set(&["item", "catalog"]),
        xy5.schema().set(&["price"]),
    ));
    println!(
        "…but I[icp] still has {} redundant 240s (no c-key on item,catalog)",
        redundant_positions(&xy5, &sigma5).len()
    );

    // --- Act 5: Example 3 — Algorithm 3 fixes what can be fixed ---
    let schema = paper::purchase_schema(&["order_id", "item", "price"]);
    let design = SchemaDesign::new(schema.clone(), paper::example3_sigma(&schema));
    println!("\nExample 3 — {design}");
    println!(
        "BCNF impossible here (Theorem 13); SQL-BCNF: {:?}",
        design.is_sql_bcnf()
    );
    let normalized = design.normalize().unwrap();
    println!("Algorithm 3 yields:");
    for child in &normalized.children {
        println!("  {child}");
        assert_eq!(child.is_vrnf(), Ok(true));
    }
    println!("both components in VRNF ✓ — redundant data values are gone; only");
    println!("redundant null markers may remain, which VRNF tolerates by design.");
}
