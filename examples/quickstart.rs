//! Quickstart: declare an SQL table schema with constraints, check its
//! normal form, normalize it, and apply the decomposition to data.
//!
//! Run with `cargo run --example quickstart`.

use sqlnf::prelude::*;

fn main() {
    // PURCHASE(order_id, item, catalog, price): catalog may be NULL.
    let schema = TableSchema::new(
        "purchase",
        ["order_id", "item", "catalog", "price"],
        &["order_id", "item", "price"],
    );

    // Business rule (Example 3 of the paper): an order line for an item
    // from a catalog is unique — expressed as the total certain FD
    // order_id,item,catalog →_w order_id,item,catalog,price.
    let sigma = Sigma::new().with(Fd::certain(
        schema.set(&["order_id", "item", "catalog"]),
        schema.attrs(),
    ));
    let design = SchemaDesign::new(schema.clone(), sigma);
    println!("design: {design}");

    // Normal-form check: the schema admits redundant values.
    println!("in BCNF/RFNF?      {}", design.is_bcnf());
    println!("in SQL-BCNF/VRNF?  {:?}", design.is_vrnf());

    // Normalize (Algorithm 3 of the paper): lossless VRNF decomposition.
    let normalized = design.normalize().expect("Σ is total FDs");
    println!("\nnormalized into {} tables:", normalized.children.len());
    for child in &normalized.children {
        println!("  {child}   (VRNF: {:?})", child.is_vrnf());
    }

    // Apply it to an instance and confirm losslessness.
    let instance = TableBuilder::from_schema(schema)
        .row(tuple![5299401i64, "Fitbit Surge", null, 240i64])
        .row(tuple![5299401i64, "Fitbit Surge", null, 240i64])
        .row(tuple![7485113i64, "Dora Doll", "Kingtoys", 25i64])
        .build();
    assert!(satisfies_all(&instance, design.sigma()));
    let parts = normalized.decomposition.apply(&instance);
    println!("\ninstance ({} rows) splits into:", instance.len());
    for p in &parts {
        println!("--- {} ({} rows)\n{p}", p.schema().name(), p.len());
    }
    assert!(normalized.decomposition.is_lossless_on(&instance));
    println!("join of the parts reproduces the instance: lossless ✓");
}
