//! A schema-design workbench driven by SQL: declare a table in DDL
//! (with possible/certain keys and FDs), load data, watch the engine
//! reject anomalies, measure the update-anomaly cost, and emit the DDL
//! of the normalized schema.
//!
//! Run with `cargo run --example sql_workbench`.

use sqlnf::core::anomaly::anomaly_score;
use sqlnf::core::preservation::preservation_report;
use sqlnf::prelude::*;

const SCRIPT: &str = "
    CREATE TABLE purchase (
        order_id INT NOT NULL,
        item     TEXT NOT NULL,
        catalog  TEXT,
        price    INT NOT NULL,
        -- every order line for an item from a catalog is unique:
        CONSTRAINT line CERTAIN FD (order_id, item, catalog)
                                  -> (order_id, item, catalog, price)
    );

    INSERT INTO purchase VALUES
        (5299401, 'Fitbit Surge', NULL, 240),
        (5299401, 'Fitbit Surge', NULL, 240),
        (7485113, 'Dora Doll', 'Kingtoys', 25),
        (7485113, 'Dora Doll', 'Kingtoys', 25);
";

fn main() {
    let mut db = Database::new();
    db.run_script(SCRIPT).expect("script loads");
    let stored = db.table("purchase").unwrap();
    println!("loaded:\n{}", stored.data());

    // The engine enforces the c-FD on writes: a conflicting price for a
    // weakly similar order line is rejected.
    let mut db2 = db.clone();
    let err = db2
        .insert(
            "purchase",
            tuple![5299401i64, "Fitbit Surge", "Amazon", 999i64],
        )
        .unwrap_err();
    println!("engine rejects the anomaly: {err}\n");

    // Update-anomaly accounting: how many cells are bound together?
    let sigma = stored.sigma().clone();
    let score = anomaly_score(stored.data(), &sigma);
    println!("bound positions before normalization: {score}");

    // Normalize the declared design.
    let design = SchemaDesign::new(stored.data().schema().clone(), sigma.clone());
    println!("in VRNF? {:?}", design.is_vrnf());
    let normalized = design.normalize().expect("total FDs");

    // Dependency preservation check.
    let report = preservation_report(
        design.schema().attrs(),
        design.schema().nfs(),
        design.sigma(),
        &normalized.decomposition,
    );
    println!(
        "dependency preserving? {} ({} preserved, {} lost)",
        report.is_preserving(),
        report.preserved.len(),
        report.lost.len()
    );

    // Apply to the data; anomaly cost vanishes on the keyed component.
    let parts = normalized.decomposition.apply(stored.data());
    for (child, part) in normalized.children.iter().zip(&parts) {
        let child_score = anomaly_score(part, child.sigma());
        println!(
            "  {}: {} rows, bound positions now {child_score}",
            child.schema().name(),
            part.len()
        );
    }
    assert!(normalized.decomposition.is_lossless_on(stored.data()));

    // And emit the normalized schema as DDL.
    println!("\n-- normalized schema --");
    for child in &normalized.children {
        println!("{}", render_create_table(child.schema(), child.sigma()));
    }
}
