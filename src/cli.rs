//! The `sqlnf` command-line tool: schema linting, normalization, FD
//! mining and data profiling from SQL/CSV files.
//!
//! Kept in the library so the logic is unit-testable; `src/main.rs` is
//! a thin wrapper. Subcommands:
//!
//! ```text
//! sqlnf lint <file.sql>              normal-form diagnosis per table
//! sqlnf normalize <file.sql>         emit DDL of the VRNF decomposition
//! sqlnf check <file.sql>             load script (DDL + INSERTs), validate
//! sqlnf profile <file.csv>           table statistics
//! sqlnf mine <file.csv> [max_lhs]    discover & classify FDs
//! ```

use crate::prelude::*;
use sqlnf_core::lint::lint;
use sqlnf_model::stats::{profile, profile_to_json, render_profile};
use sqlnf_obs::json::JsonValue;
use std::fmt::Write as _;

/// Errors surfaced to the user.
#[derive(Debug)]
pub enum CliError {
    /// Bad usage; the string is the usage text.
    Usage(String),
    /// I/O problem reading an input file.
    Io(std::io::Error),
    /// SQL parse problem.
    Sql(sqlnf_model::sql::ParseError),
    /// CSV parse problem.
    Csv(sqlnf_model::csv::CsvError),
    /// Engine rejection while loading a script.
    Engine(EngineError),
    /// Server-side failure (serve/client subcommands).
    Serve(sqlnf_serve::ServeError),
    /// Client-side failure talking to a server (timeouts, refused
    /// requests, a connection the server closed mid-reply).
    Client(sqlnf_serve::ClientError),
    /// A harness run diverged; carries the minimized replayable seed.
    Harness(sqlnf_harness::HarnessFailure),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(u) => write!(f, "{u}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Sql(e) => write!(f, "{e}"),
            CliError::Csv(e) => write!(f, "{e}"),
            CliError::Engine(e) => write!(f, "{e}"),
            CliError::Serve(e) => write!(f, "server error: {e}"),
            CliError::Client(e) => write!(f, "client error: {e}"),
            CliError::Harness(e) => write!(f, "{e}"),
        }
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}
impl From<sqlnf_model::sql::ParseError> for CliError {
    fn from(e: sqlnf_model::sql::ParseError) -> Self {
        CliError::Sql(e)
    }
}
impl From<sqlnf_model::csv::CsvError> for CliError {
    fn from(e: sqlnf_model::csv::CsvError) -> Self {
        CliError::Csv(e)
    }
}
impl From<EngineError> for CliError {
    fn from(e: EngineError) -> Self {
        CliError::Engine(e)
    }
}
impl From<sqlnf_serve::ServeError> for CliError {
    fn from(e: sqlnf_serve::ServeError) -> Self {
        CliError::Serve(e)
    }
}
impl From<sqlnf_serve::ClientError> for CliError {
    fn from(e: sqlnf_serve::ClientError) -> Self {
        CliError::Client(e)
    }
}
impl From<sqlnf_harness::HarnessFailure> for CliError {
    fn from(e: sqlnf_harness::HarnessFailure) -> Self {
        CliError::Harness(e)
    }
}

const USAGE: &str = "sqlnf — SQL schema design (Köhler & Link, SIGMOD 2016)

USAGE:
    sqlnf lint <file.sql>              normal-form diagnosis per table
    sqlnf normalize <file.sql>         emit DDL of the VRNF decomposition
    sqlnf check <file.sql>             run script, validate data, report redundancy
    sqlnf profile <file.csv>           table statistics
    sqlnf mine <file.csv> [max_lhs]    discover & classify FDs (default LHS cap 3)
    sqlnf mine <file.csv> --incremental[=K]
                                       same report via the incremental engine
                                       (rows applied as deltas; K > 0 audits
                                       against a full re-mine every K deltas)
    sqlnf mine <file.csv> --semantics <tok>
                                       mine under one null semantics
                                       (classical | possible | certain | weak)
                                       instead of the combined p/c report;
                                       composes with --incremental
    sqlnf dataset <name> [seed]        emit an evaluation dataset as CSV
                                       (contact | contractor | fig7 | purchase)
    sqlnf serve [--port N] [--wal-dir DIR] [--workers N] [--snapshot-every N]
                [--wal-shards N] [--commit-window-us N] [--fsync always|batch]
                                       run the constraint-enforcing TCP server
                                       (line protocol; group-commit WAL sharded
                                       across N logs; see DESIGN.md §8)
    sqlnf client <host:port> [file.sql]
                                       run a scripted session against a server
                                       (reads stdin when no file is given;
                                       lines may mix SQL and service verbs)
    sqlnf client <host:port> --metrics one-shot METRICS scrape (the raw
                                       Prometheus-style text exposition)
    sqlnf client <host:port> --watch [table] [weak]
                                       subscribe to live discovery events
                                       (WATCH; streams EVENT/LAGGED lines
                                       until the server closes the session;
                                       a trailing `weak` adds wfd: facts)
    sqlnf top <host:port> [--interval MS] [--samples N]
                                       live per-verb request/p50/p99/throughput
                                       table polled from METRICS (default
                                       interval 1000ms; N=0 polls forever,
                                       the default)
    sqlnf harness [--seed N | --seed A..=B] [--ops N] [--clients N]
                  [--kill-prob P] [--corrupt-prob P] [--watch]
                  [--wal-shards N] [--commit-window-us N] [--fsync always|batch]
                                       seeded fault-injection + differential
                                       harness over the server, WAL and miner
                                       (deterministic per seed; failures print
                                       a minimized replayable seed/op-count;
                                       defaults: seed 1, ops 500, clients 4,
                                       probabilities 0.5; --watch rides a WATCH
                                       subscriber + MINE session along and
                                       cross-checks the event stream against
                                       from-scratch mines; see DESIGN.md §9)

FLAGS (any subcommand):
    --stats                            print an observability report to stderr
    --stats-json <path>                write the report as JSON (profile adds
                                       the table statistics to the document)
    --trace                            echo the reasoner/miner trace to stderr
    --cache-budget <bytes>             partition-cache byte budget for mining
                                       (suffixes k/m/g accepted; default 64m;
                                       0 disables caching — results identical)
";

/// Collects the CREATE TABLE designs of a script.
fn designs_of_script(src: &str) -> Result<Vec<SchemaDesign>, CliError> {
    let mut designs = Vec::new();
    for stmt in parse_script(src)? {
        if let Statement::CreateTable { schema, sigma } = stmt {
            designs.push(SchemaDesign::new(schema, sigma));
        }
    }
    Ok(designs)
}

/// `sqlnf lint`: normal-form diagnosis for every table of the script.
pub fn cmd_lint(sql_src: &str) -> Result<String, CliError> {
    let designs = designs_of_script(sql_src)?;
    if designs.is_empty() {
        return Err(CliError::Usage("no CREATE TABLE statements found".into()));
    }
    let mut out = String::new();
    for design in &designs {
        let _ = writeln!(out, "### {}", design.schema().name());
        let _ = writeln!(out, "{design}");
        let _ = write!(out, "{}", lint(design));
        let _ = writeln!(out);
    }
    Ok(out)
}

/// `sqlnf normalize`: DDL of the VRNF decomposition of every table.
pub fn cmd_normalize(sql_src: &str) -> Result<String, CliError> {
    let designs = designs_of_script(sql_src)?;
    if designs.is_empty() {
        return Err(CliError::Usage("no CREATE TABLE statements found".into()));
    }
    let mut out = String::new();
    for design in &designs {
        let _ = writeln!(out, "-- {} --", design.schema().name());
        if design.is_vrnf() == Ok(true) {
            let _ = writeln!(out, "-- already in VRNF; kept as declared");
            let _ = writeln!(
                out,
                "{}\n",
                render_create_table(design.schema(), design.sigma())
            );
            continue;
        }
        match design.normalize() {
            Ok(normalized) => {
                for child in &normalized.children {
                    let _ = writeln!(
                        out,
                        "{}\n",
                        render_create_table(child.schema(), child.sigma())
                    );
                }
            }
            Err(e) => {
                let _ = writeln!(out, "-- cannot normalize: {e}");
                let _ = writeln!(
                    out,
                    "{}\n",
                    render_create_table(design.schema(), design.sigma())
                );
            }
        }
    }
    Ok(out)
}

/// `sqlnf check`: run the script through the engine and report the
/// state, including redundant positions of each loaded instance.
pub fn cmd_check(sql_src: &str) -> Result<String, CliError> {
    let mut db = Database::new();
    db.run_script(sql_src)?;
    let mut out = String::new();
    for name in db.table_names() {
        let stored = db.table(name).expect("listed");
        let table = stored.data();
        let red = sqlnf_core::redundancy::redundant_positions(table, stored.sigma());
        let value_red = red
            .iter()
            .filter(|p| table.rows()[p.row].get(p.col).is_total())
            .count();
        let _ = writeln!(
            out,
            "{name}: {} rows, constraints satisfied ✓, {} redundant positions \
             ({} carrying data values)",
            table.len(),
            red.len(),
            value_red
        );
        for p in red.iter().take(5) {
            let _ = writeln!(
                out,
                "  redundant: row {}, column {} = {}",
                p.row,
                table.schema().column_name(p.col),
                table.rows()[p.row].get(p.col)
            );
        }
        if red.len() > 5 {
            let _ = writeln!(out, "  … and {} more", red.len() - 5);
        }
    }
    Ok(out)
}

/// `sqlnf profile`: statistics of a CSV table.
pub fn cmd_profile(csv_src: &str, name: &str) -> Result<String, CliError> {
    let table = table_from_csv(name, csv_src)?;
    Ok(render_profile(&profile(&table)))
}

/// `sqlnf mine`: discover and classify FDs of a CSV table.
/// `cache_budget` bounds the bytes the level-wise partition cache may
/// hold (see `--cache-budget`); results are identical for any value.
pub fn cmd_mine(
    csv_src: &str,
    name: &str,
    max_lhs: usize,
    opts: &MineOptions,
) -> Result<String, CliError> {
    let table = table_from_csv(name, csv_src)?;
    match opts.incremental {
        None => Ok(match opts.semantics {
            None => mine_report(name, &table, max_lhs, opts.cache_budget),
            Some(sem) => semantics_report(name, &table, sem, max_lhs, opts.cache_budget),
        }),
        Some(every) => {
            // Exercise the delta path: every row is applied as an
            // insert delta, then the report renders off the maintained
            // state. The output is byte-identical to the from-scratch
            // path (and `--incremental=K` asserts exactly that every K
            // deltas).
            let mut m = IncrementalMiner::new(table.schema().clone());
            if every > 0 {
                m = m.with_reconcile_every(every);
            }
            for row in table.rows() {
                m.insert(row.clone());
            }
            Ok(match opts.semantics {
                None => m.report(name, max_lhs, opts.cache_budget),
                Some(sem) => {
                    let fds = m.mine_fds(sem, max_lhs, opts.cache_budget);
                    render_semantics_report(name, table.len(), table.schema(), sem, max_lhs, &fds)
                }
            })
        }
    }
}

/// Parses the `serve` subcommand's flags.
fn parse_serve_config(args: &[String]) -> Result<sqlnf_serve::ServeConfig, CliError> {
    let mut config = sqlnf_serve::ServeConfig::default();
    let mut it = args.iter();
    let need = |flag: &str, v: Option<&String>| -> Result<String, CliError> {
        v.cloned()
            .ok_or_else(|| CliError::Usage(format!("{flag} needs a value\n\n{USAGE}")))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--port" => {
                let v = need("--port", it.next())?;
                let port: u16 = v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad --port {v:?}\n\n{USAGE}")))?;
                config.addr = format!("127.0.0.1:{port}");
            }
            "--wal-dir" => {
                config.wal_dir = Some(std::path::PathBuf::from(need("--wal-dir", it.next())?));
            }
            "--workers" => {
                let v = need("--workers", it.next())?;
                config.workers = v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad --workers {v:?}\n\n{USAGE}")))?;
            }
            "--snapshot-every" => {
                let v = need("--snapshot-every", it.next())?;
                config.snapshot_every = v.parse().map_err(|_| {
                    CliError::Usage(format!("bad --snapshot-every {v:?}\n\n{USAGE}"))
                })?;
            }
            "--wal-shards" => {
                let v = need("--wal-shards", it.next())?;
                config.wal_shards = match v.parse() {
                    Ok(n) if n >= 1 => n,
                    _ => {
                        return Err(CliError::Usage(format!(
                            "bad --wal-shards {v:?} (want an integer >= 1)\n\n{USAGE}"
                        )))
                    }
                };
            }
            "--commit-window-us" => {
                let v = need("--commit-window-us", it.next())?;
                let us: u64 = v.parse().map_err(|_| {
                    CliError::Usage(format!("bad --commit-window-us {v:?}\n\n{USAGE}"))
                })?;
                config.commit_window = std::time::Duration::from_micros(us);
            }
            "--fsync" => {
                let v = need("--fsync", it.next())?;
                config.fsync = v.parse().map_err(|_| {
                    CliError::Usage(format!("bad --fsync {v:?} (always | batch)\n\n{USAGE}"))
                })?;
            }
            other => {
                return Err(CliError::Usage(format!(
                    "unknown serve flag {other:?}\n\n{USAGE}"
                )))
            }
        }
    }
    Ok(config)
}

/// `sqlnf serve`: run the TCP server until a client sends `SHUTDOWN`.
/// Prints (and flushes) a `listening on <addr>` line immediately so
/// scripts can wait for readiness.
pub fn cmd_serve(args: &[String]) -> Result<String, CliError> {
    let config = parse_serve_config(args)?;
    let server = sqlnf_serve::Server::start(config)?;
    {
        use std::io::Write as _;
        let mut out = std::io::stdout();
        let _ = writeln!(out, "listening on {}", server.local_addr());
        let _ = out.flush();
    }
    server.wait_shutdown();
    let store = server.store();
    let admitted = store
        .stats
        .admitted
        .load(std::sync::atomic::Ordering::Relaxed);
    let sessions = store
        .stats
        .sessions
        .load(std::sync::atomic::Ordering::Relaxed);
    server.shutdown()?;
    Ok(format!(
        "server stopped ({sessions} sessions, {admitted} statements admitted)"
    ))
}

/// `sqlnf client`: run a scripted session. Lines may mix SQL
/// statements (accumulated to their terminating `;`) and service
/// verbs; each request's reply is echoed.
pub fn cmd_client(addr: &str, script: &str) -> Result<String, CliError> {
    use sqlnf_serve::protocol::{is_verb_line, statement_complete};
    let mut client = sqlnf_serve::Client::connect(addr)?;
    let mut out = String::new();
    let mut echo = |reply: sqlnf_serve::Reply| {
        let _ = writeln!(
            out,
            "{} {}",
            if reply.ok { "OK" } else { "ERR" },
            reply.message
        );
        for line in &reply.lines {
            let _ = writeln!(out, "{line}");
        }
    };
    let mut buf = String::new();
    let mut closed = false;
    for line in script.lines() {
        if buf.trim().is_empty() && is_verb_line(line) {
            let upper = line.trim().to_ascii_uppercase();
            echo(client.request(line)?);
            if upper == "QUIT" || upper == "SHUTDOWN" {
                closed = true;
                break;
            }
            continue;
        }
        buf.push_str(line);
        buf.push('\n');
        if statement_complete(&buf) {
            echo(client.request(&buf)?);
            buf.clear();
        }
    }
    if !buf.trim().is_empty() {
        return Err(CliError::Usage(
            "script ends with an unterminated statement".into(),
        ));
    }
    if !closed {
        client.quit()?;
    }
    Ok(out)
}

/// `sqlnf client --watch [table]`: subscribe and stream discovery
/// events to stdout as they arrive, until the server closes the
/// session (or the process is interrupted).
pub fn cmd_client_watch(addr: &str, table: Option<&str>, weak: bool) -> Result<String, CliError> {
    use sqlnf_serve::{ClientError, StreamItem};
    let mut client = sqlnf_serve::Client::connect(addr)?;
    let reply = if weak {
        client.watch_weak(table)?
    } else {
        client.watch(table)?
    };
    println!("OK {}", reply.message);
    loop {
        match client.next_event() {
            Ok(Some(StreamItem::Event(ev))) => println!("{}", ev.line()),
            Ok(Some(StreamItem::Lagged(n))) => println!("LAGGED {n}"),
            Ok(None) => continue, // idle poll; keep streaming
            Err(ClientError::ServerClosed) => return Ok(String::new()),
            Err(e) => return Err(e.into()),
        }
    }
}

/// `sqlnf client --metrics`: one-shot METRICS scrape, raw exposition.
pub fn cmd_client_metrics(addr: &str) -> Result<String, CliError> {
    let mut client = sqlnf_serve::Client::connect(addr)?;
    let text = client.metrics()?;
    client.quit()?;
    Ok(text)
}

/// Pivots one exposition scrape into the `top` table: per verb, the
/// lifetime request count, p50/p99 latency, and the rate against the
/// previous scrape's counts. Returns the rendered frame and this
/// scrape's counts (the next frame's baseline).
fn top_frame(
    samples: &[sqlnf_serve::Sample],
    prev: &std::collections::BTreeMap<String, f64>,
    dt_secs: f64,
) -> (String, std::collections::BTreeMap<String, f64>) {
    // (count, p50_ns, p99_ns) per verb label.
    let mut verbs: std::collections::BTreeMap<String, (f64, f64, f64)> =
        std::collections::BTreeMap::new();
    for s in samples {
        let Some(name) = s.label("name") else {
            continue;
        };
        let Some(verb) = name.strip_prefix("serve.verb.") else {
            continue;
        };
        let entry = verbs.entry(verb.to_owned()).or_default();
        match s.name.as_str() {
            "sqlnf_span_count" => entry.0 = s.value,
            "sqlnf_span_p50_ns" => entry.1 = s.value,
            "sqlnf_span_p99_ns" => entry.2 = s.value,
            _ => {}
        }
    }
    let fmt_ns = |ns: f64| -> String {
        if ns < 1e3 {
            format!("{ns:.0}ns")
        } else if ns < 1e6 {
            format!("{:.1}µs", ns / 1e3)
        } else if ns < 1e9 {
            format!("{:.1}ms", ns / 1e6)
        } else {
            format!("{:.2}s", ns / 1e9)
        }
    };
    let mut out = String::new();
    let mut counts = std::collections::BTreeMap::new();
    if verbs.is_empty() {
        // A server compiled without the obs feature has no span
        // histograms; fall back to the store counters so `top` still
        // shows something truthful.
        let _ = writeln!(
            out,
            "(no per-verb histograms — server built without obs; store counters:)"
        );
        for s in samples {
            if s.name == "sqlnf_store" {
                if let Some(name) = s.label("name") {
                    let _ = writeln!(out, "  {name} {}", s.value);
                }
            }
        }
        return (out, counts);
    }
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>10} {:>10} {:>10}",
        "verb", "requests", "p50", "p99", "req/s"
    );
    for (verb, (count, p50, p99)) in &verbs {
        let rate = match prev.get(verb) {
            Some(prev_count) if dt_secs > 0.0 => (count - prev_count).max(0.0) / dt_secs,
            _ => 0.0,
        };
        let _ = writeln!(
            out,
            "{verb:<12} {count:>10.0} {:>10} {:>10} {rate:>10.1}",
            fmt_ns(*p50),
            fmt_ns(*p99),
        );
        counts.insert(verb.clone(), *count);
    }
    // Group-commit health: how many frames each fsync amortizes. The
    // batch-size histogram reuses the span plumbing, so its "ns" values
    // are plain frame counts.
    let commit = |metric: &str| {
        samples
            .iter()
            .find(|s| s.name == metric && s.label("name") == Some("serve.commit.batch_size"))
            .map(|s| s.value)
    };
    if let (Some(batches), Some(p50), Some(p99)) = (
        commit("sqlnf_span_count"),
        commit("sqlnf_span_p50_ns"),
        commit("sqlnf_span_p99_ns"),
    ) {
        if batches > 0.0 {
            let _ = writeln!(
                out,
                "commit batches {batches:.0}  size p50 {p50:.0}  p99 {p99:.0}"
            );
        }
    }
    // Incremental-discovery health (the WATCH hub's shadow miners):
    // deltas applied, candidate FDs/keys re-examined, audit re-mines,
    // and the high-water candidate frontier.
    let incr = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == "sqlnf_counter" && s.label("name") == Some(name))
            .map(|s| s.value)
    };
    if let Some(deltas) = incr("discovery.incr.deltas") {
        if deltas > 0.0 {
            let _ = writeln!(
                out,
                "incr deltas {deltas:.0}  touched {:.0}  reconciles {:.0}  frontier {:.0}",
                incr("discovery.incr.candidates_touched").unwrap_or(0.0),
                incr("discovery.incr.reconciles").unwrap_or(0.0),
                incr("discovery.incr.frontier_size").unwrap_or(0.0),
            );
        }
    }
    (out, counts)
}

/// `sqlnf top`: poll `METRICS` and render a live per-verb table.
/// `--samples N` stops after N frames (0 = forever, the default —
/// frames print as they arrive); the final frame is also returned so
/// scripted callers get the table on stdout exactly once.
pub fn cmd_top(addr: &str, args: &[String]) -> Result<String, CliError> {
    let mut interval = std::time::Duration::from_millis(1000);
    let mut frames = 0usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let need = |flag: &str, v: Option<&String>| -> Result<String, CliError> {
            v.cloned()
                .ok_or_else(|| CliError::Usage(format!("{flag} needs a value\n\n{USAGE}")))
        };
        match a.as_str() {
            "--interval" => {
                let v = need("--interval", it.next())?;
                let ms: u64 = v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad --interval {v:?}\n\n{USAGE}")))?;
                interval = std::time::Duration::from_millis(ms);
            }
            "--samples" => {
                let v = need("--samples", it.next())?;
                frames = v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad --samples {v:?}\n\n{USAGE}")))?;
            }
            other => {
                return Err(CliError::Usage(format!(
                    "unknown top flag {other:?}\n\n{USAGE}"
                )))
            }
        }
    }
    let mut client = sqlnf_serve::Client::connect(addr)?;
    let mut prev = std::collections::BTreeMap::new();
    let mut last = std::time::Instant::now();
    let mut frame_no = 0usize;
    loop {
        let text = client.metrics()?;
        let samples = sqlnf_serve::parse_exposition(&text)
            .map_err(|e| CliError::Client(sqlnf_serve::ClientError::Protocol(e)))?;
        let dt = last.elapsed().as_secs_f64();
        last = std::time::Instant::now();
        let (frame, counts) = top_frame(&samples, &prev, dt);
        prev = counts;
        frame_no += 1;
        let done = frames != 0 && frame_no >= frames;
        if done {
            let _ = client.quit();
            return Ok(frame);
        }
        {
            use std::io::Write as _;
            let mut stdout = std::io::stdout();
            let _ = writeln!(stdout, "{frame}");
            let _ = stdout.flush();
        }
        std::thread::sleep(interval);
    }
}

/// Parses the `harness` subcommand's flags: the seed set plus the
/// workload and fault knobs.
fn parse_harness_args(
    args: &[String],
) -> Result<(Vec<u64>, sqlnf_harness::HarnessConfig), CliError> {
    let mut seeds: Vec<u64> = vec![1];
    let mut config = sqlnf_harness::HarnessConfig::default();
    let mut it = args.iter();
    let need = |flag: &str, v: Option<&String>| -> Result<String, CliError> {
        v.cloned()
            .ok_or_else(|| CliError::Usage(format!("{flag} needs a value\n\n{USAGE}")))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                let v = need("--seed", it.next())?;
                let bad = || CliError::Usage(format!("bad --seed {v:?} (N or A..=B)\n\n{USAGE}"));
                seeds = if let Some((a, b)) = v.split_once("..=") {
                    let lo: u64 = a.trim().parse().map_err(|_| bad())?;
                    let hi: u64 = b.trim().parse().map_err(|_| bad())?;
                    if lo > hi {
                        return Err(bad());
                    }
                    (lo..=hi).collect()
                } else {
                    vec![v.trim().parse().map_err(|_| bad())?]
                };
            }
            "--ops" => {
                let v = need("--ops", it.next())?;
                config.ops = v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad --ops {v:?}\n\n{USAGE}")))?;
            }
            "--clients" => {
                let v = need("--clients", it.next())?;
                config.clients = v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad --clients {v:?}\n\n{USAGE}")))?;
            }
            "--kill-prob" => {
                let v = need("--kill-prob", it.next())?;
                config.kill_prob = v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad --kill-prob {v:?}\n\n{USAGE}")))?;
            }
            "--corrupt-prob" => {
                let v = need("--corrupt-prob", it.next())?;
                config.corrupt_prob = v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad --corrupt-prob {v:?}\n\n{USAGE}")))?;
            }
            "--wal-shards" => {
                let v = need("--wal-shards", it.next())?;
                config.wal_shards = match v.parse() {
                    Ok(n) if n >= 1 => n,
                    _ => {
                        return Err(CliError::Usage(format!(
                            "bad --wal-shards {v:?} (want an integer >= 1)\n\n{USAGE}"
                        )))
                    }
                };
            }
            "--commit-window-us" => {
                let v = need("--commit-window-us", it.next())?;
                config.commit_window_us = v.parse().map_err(|_| {
                    CliError::Usage(format!("bad --commit-window-us {v:?}\n\n{USAGE}"))
                })?;
            }
            "--fsync" => {
                let v = need("--fsync", it.next())?;
                config.fsync = v.parse().map_err(|_| {
                    CliError::Usage(format!("bad --fsync {v:?} (always | batch)\n\n{USAGE}"))
                })?;
            }
            "--watch" => config.watch = true,
            other => {
                return Err(CliError::Usage(format!(
                    "unknown harness flag {other:?}\n\n{USAGE}"
                )))
            }
        }
    }
    Ok((seeds, config))
}

/// `sqlnf harness`: run the seeded fault-injection + differential
/// harness over one seed or a seed range. A failing seed aborts the
/// sweep with a minimized, replayable `(seed, ops)` pair.
pub fn cmd_harness(args: &[String]) -> Result<String, CliError> {
    let (seeds, base) = parse_harness_args(args)?;
    let mut out = String::new();
    let mut admitted = 0usize;
    let mut oracle_queries = 0usize;
    for seed in &seeds {
        let mut config = base.clone();
        config.seed = *seed;
        let report = sqlnf_harness::run_minimized(&config)?;
        admitted += report.admitted;
        oracle_queries += report.minecheck.oracle_queries;
        let _ = writeln!(out, "{}", report.line());
    }
    let _ = writeln!(
        out,
        "{} seed{} passed ({admitted} statements admitted, {oracle_queries} oracle queries)",
        seeds.len(),
        if seeds.len() == 1 { "" } else { "s" },
    );
    Ok(out)
}

/// `sqlnf dataset`: emit one of the evaluation datasets as CSV.
pub fn cmd_dataset(name: &str, seed: u64) -> Result<String, CliError> {
    let table = match name {
        "contact" => sqlnf_datagen::contact::contact_full(seed),
        "contractor" => sqlnf_datagen::contractor::contractor(seed),
        "fig7" => sqlnf_datagen::contact::fig7_snippet(),
        "purchase" => sqlnf_datagen::paper::purchase_fig5(),
        other => {
            return Err(CliError::Usage(format!(
                "unknown dataset {other:?} (contact | contractor | fig7 | purchase)"
            )))
        }
    };
    Ok(table_to_csv(&table))
}

/// Observability flags accepted by every subcommand.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObsOptions {
    /// `--stats`: print the report to stderr after the command.
    pub stats: bool,
    /// `--stats-json <path>`: write the report (plus any command
    /// payload, e.g. the table profile) as a JSON document.
    pub stats_json: Option<String>,
    /// `--trace`: echo the reasoner/miner trace to stderr as it runs.
    pub trace: bool,
}

impl ObsOptions {
    /// Whether a report must be captured after the command runs.
    pub fn wants_report(&self) -> bool {
        self.stats || self.stats_json.is_some()
    }
}

/// Mining knobs accepted in any position (used by `mine`; ignored by
/// other subcommands).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MineOptions {
    /// `--cache-budget <bytes>`: byte budget of the miner's level-wise
    /// partition cache. Results are identical for any value.
    pub cache_budget: usize,
    /// `--incremental[=K]`: route `mine` through the incremental
    /// engine, applying every row as a delta. `Some(0)` never audits;
    /// `Some(k)` re-mines from scratch and asserts equivalence every
    /// `k` deltas. Output is byte-identical either way.
    pub incremental: Option<u64>,
    /// `--semantics <tok>`: mine under one named semantics
    /// (classical | possible | certain | weak) instead of the default
    /// combined possible/certain classification.
    pub semantics: Option<Semantics>,
}

impl Default for MineOptions {
    fn default() -> Self {
        MineOptions {
            cache_budget: DEFAULT_CACHE_BUDGET,
            incremental: None,
            semantics: None,
        }
    }
}

/// Parses a byte count with optional binary `k`/`m`/`g` suffix.
fn parse_budget(s: &str) -> Option<usize> {
    let t = s.trim().to_ascii_lowercase();
    let (digits, mult) = if let Some(d) = t.strip_suffix('k') {
        (d, 1usize << 10)
    } else if let Some(d) = t.strip_suffix('m') {
        (d, 1 << 20)
    } else if let Some(d) = t.strip_suffix('g') {
        (d, 1 << 30)
    } else {
        (t.as_str(), 1)
    };
    digits
        .parse::<usize>()
        .ok()
        .and_then(|n| n.checked_mul(mult))
}

/// Strips the mining flags out of an argv, in any position.
pub fn split_mine_args(args: &[String]) -> Result<(Vec<String>, MineOptions), CliError> {
    let mut rest = Vec::new();
    let mut opts = MineOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--cache-budget" {
            let v = it.next().ok_or_else(|| {
                CliError::Usage(format!("--cache-budget needs a byte count\n\n{USAGE}"))
            })?;
            opts.cache_budget = parse_budget(v)
                .ok_or_else(|| CliError::Usage(format!("bad --cache-budget {v:?}\n\n{USAGE}")))?;
        } else if a == "--incremental" {
            opts.incremental = Some(0);
        } else if let Some(k) = a.strip_prefix("--incremental=") {
            let k: u64 = k
                .parse()
                .map_err(|_| CliError::Usage(format!("bad --incremental {k:?}\n\n{USAGE}")))?;
            opts.incremental = Some(k);
        } else if a == "--semantics" {
            let v = it
                .next()
                .ok_or_else(|| CliError::Usage(format!("--semantics needs a token\n\n{USAGE}")))?;
            opts.semantics = Some(
                Semantics::parse(v)
                    .ok_or_else(|| CliError::Usage(format!("bad --semantics {v:?}\n\n{USAGE}")))?,
            );
        } else {
            rest.push(a.clone());
        }
    }
    Ok((rest, opts))
}

/// Strips the observability flags out of an argv, in any position.
pub fn split_obs_args(args: &[String]) -> Result<(Vec<String>, ObsOptions), CliError> {
    let mut rest = Vec::new();
    let mut opts = ObsOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--stats" => opts.stats = true,
            "--trace" => opts.trace = true,
            "--stats-json" => {
                let path = it.next().ok_or_else(|| {
                    CliError::Usage(format!("--stats-json needs a path\n\n{USAGE}"))
                })?;
                opts.stats_json = Some(path.clone());
            }
            _ => rest.push(a.clone()),
        }
    }
    Ok((rest, opts))
}

/// Dispatches the flag-free argv. The second component is an optional
/// command payload merged into the `--stats-json` document (the profile
/// subcommand exports its statistics there).
fn dispatch(args: &[String], mine: &MineOptions) -> Result<(String, Option<JsonValue>), CliError> {
    let read = |path: &str| -> Result<String, CliError> { Ok(std::fs::read_to_string(path)?) };
    let base_name = |path: &str| -> String {
        std::path::Path::new(path)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "table".to_owned())
    };
    match args {
        [cmd, file] if cmd == "lint" => Ok((cmd_lint(&read(file)?)?, None)),
        [cmd, file] if cmd == "normalize" => Ok((cmd_normalize(&read(file)?)?, None)),
        [cmd, file] if cmd == "check" => Ok((cmd_check(&read(file)?)?, None)),
        [cmd, file] if cmd == "profile" => {
            let table = table_from_csv(&base_name(file), &read(file)?)?;
            let p = profile(&table);
            Ok((render_profile(&p), Some(profile_to_json(&p))))
        }
        [cmd, file] if cmd == "mine" => {
            Ok((cmd_mine(&read(file)?, &base_name(file), 3, mine)?, None))
        }
        [cmd, file, cap] if cmd == "mine" => {
            let cap: usize = cap
                .parse()
                .map_err(|_| CliError::Usage(format!("bad max_lhs {cap:?}\n\n{USAGE}")))?;
            Ok((cmd_mine(&read(file)?, &base_name(file), cap, mine)?, None))
        }
        [cmd, rest @ ..] if cmd == "serve" => Ok((cmd_serve(rest)?, None)),
        [cmd, rest @ ..] if cmd == "harness" => Ok((cmd_harness(rest)?, None)),
        [cmd, addr] if cmd == "client" => {
            let mut script = String::new();
            std::io::Read::read_to_string(&mut std::io::stdin(), &mut script)?;
            Ok((cmd_client(addr, &script)?, None))
        }
        [cmd, addr, flag] if cmd == "client" && flag == "--metrics" => {
            Ok((cmd_client_metrics(addr)?, None))
        }
        [cmd, addr, flag] if cmd == "client" && flag == "--watch" => {
            Ok((cmd_client_watch(addr, None, false)?, None))
        }
        [cmd, addr, flag, table] if cmd == "client" && flag == "--watch" => {
            // `--watch weak` opts into the weak plane on all tables.
            let (table, weak) = match table.as_str() {
                "weak" => (None, true),
                t => (Some(t), false),
            };
            Ok((cmd_client_watch(addr, table, weak)?, None))
        }
        [cmd, addr, flag, table, sem] if cmd == "client" && flag == "--watch" && sem == "weak" => {
            Ok((cmd_client_watch(addr, Some(table), true)?, None))
        }
        [cmd, addr, file] if cmd == "client" => Ok((cmd_client(addr, &read(file)?)?, None)),
        [cmd, addr, rest @ ..] if cmd == "top" => Ok((cmd_top(addr, rest)?, None)),
        [cmd, name] if cmd == "dataset" => Ok((cmd_dataset(name, 20_160_626)?, None)),
        [cmd, name, seed] if cmd == "dataset" => {
            let seed: u64 = seed
                .parse()
                .map_err(|_| CliError::Usage(format!("bad seed {seed:?}\n\n{USAGE}")))?;
            Ok((cmd_dataset(name, seed)?, None))
        }
        _ => Err(CliError::Usage(USAGE.to_owned())),
    }
}

/// Dispatches a full argv (excluding the program name). Returns the
/// text to print on success; the observability flags report via stderr
/// and `--stats-json` side files.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let (rest, obs) = split_obs_args(args)?;
    let (rest, mine) = split_mine_args(&rest)?;
    if obs.wants_report() {
        // Scope the report to this command (run() may be called several
        // times in one process, e.g. from tests).
        sqlnf_obs::reset();
    }
    sqlnf_obs::set_trace(obs.trace);
    let outcome = dispatch(&rest, &mine);
    sqlnf_obs::set_trace(false);
    let (text, payload) = outcome?;
    if obs.wants_report() {
        let report = sqlnf_obs::report();
        if obs.stats {
            if sqlnf_obs::ENABLED {
                eprint!("{}", report.render());
            } else {
                eprintln!("(observability disabled at compile time; enable the `obs` feature)");
            }
        }
        if let Some(path) = &obs.stats_json {
            let mut doc = vec![(
                "command".to_string(),
                JsonValue::Str(rest.first().cloned().unwrap_or_default()),
            )];
            if let JsonValue::Object(fields) = report.to_json_value() {
                doc.extend(fields);
            }
            if let Some(payload) = payload {
                doc.push(("profile".to_string(), payload));
            }
            std::fs::write(path, JsonValue::Object(doc).to_json())?;
        }
    }
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DDL: &str = "
        CREATE TABLE purchase (
            order_id INT NOT NULL,
            item     TEXT NOT NULL,
            catalog  TEXT,
            price    INT NOT NULL,
            CONSTRAINT line CERTAIN FD (order_id, item, catalog)
                                      -> (order_id, item, catalog, price)
        );
    ";

    #[test]
    fn lint_reports_value_redundancy() {
        let out = cmd_lint(DDL).unwrap();
        assert!(out.contains("purchase"));
        assert!(out.contains("VALUE-REDUNDANCY"));
        assert!(out.contains("witness instance"));
    }

    #[test]
    fn normalize_emits_two_tables() {
        let out = cmd_normalize(DDL).unwrap();
        assert_eq!(out.matches("CREATE TABLE").count(), 2);
        assert!(out.contains("CERTAIN KEY (order_id, item, catalog)"));
        // The emitted DDL parses back.
        let stmts = parse_script(&out).unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn normalize_keeps_vrnf_tables() {
        let ddl = "CREATE TABLE ok (a INT NOT NULL, b TEXT, \
                   CONSTRAINT k CERTAIN KEY (a));";
        let out = cmd_normalize(ddl).unwrap();
        assert!(out.contains("already in VRNF"));
        assert_eq!(out.matches("CREATE TABLE").count(), 1);
    }

    #[test]
    fn check_finds_redundancy_in_data() {
        let script = format!(
            "{DDL}\nINSERT INTO purchase VALUES \
             (1, 'Fitbit Surge', NULL, 240), (1, 'Fitbit Surge', NULL, 240);"
        );
        let out = cmd_check(&script).unwrap();
        assert!(out.contains("2 rows"));
        assert!(out.contains("redundant"));
    }

    #[test]
    fn profile_and_mine_from_csv() {
        let csv = "city,state\nColumbia,48\nColumbia,48\nCarmel,20\n";
        let prof = cmd_profile(csv, "contacts").unwrap();
        assert!(prof.contains("contacts"));
        assert!(prof.contains("city"));
        let mined = cmd_mine(csv, "contacts", 2, &MineOptions::default()).unwrap();
        assert!(mined.contains("nn-FD"));
        assert!(mined.contains("{city}"));
        // A zero cache budget changes nothing but throughput, and the
        // incremental engine (auditing on every delta) is byte-
        // identical to the from-scratch path.
        let zero = MineOptions {
            cache_budget: 0,
            ..MineOptions::default()
        };
        assert_eq!(mined, cmd_mine(csv, "contacts", 2, &zero).unwrap());
        let incr = MineOptions {
            incremental: Some(1),
            ..MineOptions::default()
        };
        assert_eq!(mined, cmd_mine(csv, "contacts", 2, &incr).unwrap());
    }

    #[test]
    fn mine_with_semantics_flag_lists_one_plane() {
        let csv = "city,state\nColumbia,48\nColumbia,\nCarmel,20\n";
        let weak = MineOptions {
            semantics: Some(Semantics::Weak),
            ..MineOptions::default()
        };
        let report = cmd_mine(csv, "contacts", 2, &weak).unwrap();
        assert!(report.contains("weak semantics"), "{report}");
        // The null on (Columbia, ⊥) completes to 48, so city weakly
        // determines state; certain semantics refuses the same FD.
        assert!(report.contains("{city} -> {state}"), "{report}");
        let certain = MineOptions {
            semantics: Some(Semantics::Certain),
            ..MineOptions::default()
        };
        let report_c = cmd_mine(csv, "contacts", 2, &certain).unwrap();
        assert!(!report_c.contains("{city} -> {state}"), "{report_c}");
        // The incremental engine renders the same bytes for every
        // semantics token.
        for sem in Semantics::ALL {
            let scratch = MineOptions {
                semantics: Some(sem),
                ..MineOptions::default()
            };
            let incr = MineOptions {
                incremental: Some(1),
                ..scratch
            };
            assert_eq!(
                cmd_mine(csv, "contacts", 2, &scratch).unwrap(),
                cmd_mine(csv, "contacts", 2, &incr).unwrap()
            );
        }
        // Flag parsing: stripped from argv, bad tokens are usage errors.
        let argv: Vec<String> = ["mine", "x.csv", "--semantics", "WEAK", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (rest, opts) = split_mine_args(&argv).unwrap();
        assert_eq!(rest, vec!["mine", "x.csv", "2"]);
        assert_eq!(opts.semantics, Some(Semantics::Weak));
        let bad: Vec<String> = ["mine", "x.csv", "--semantics", "fuzzy"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(matches!(split_mine_args(&bad), Err(CliError::Usage(_))));
    }

    #[test]
    fn cache_budget_flag_is_parsed_and_stripped() {
        let argv: Vec<String> = ["mine", "x.csv", "--cache-budget", "8m", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (rest, opts) = split_mine_args(&argv).unwrap();
        assert_eq!(rest, vec!["mine", "x.csv", "2"]);
        assert_eq!(opts.cache_budget, 8 << 20);
        assert_eq!(parse_budget("0"), Some(0));
        assert_eq!(parse_budget("512k"), Some(512 << 10));
        assert_eq!(parse_budget("1g"), Some(1 << 30));
        assert_eq!(parse_budget("64"), Some(64));
        assert_eq!(parse_budget("x"), None);
        // Dangling or malformed values are usage errors.
        let bad: Vec<String> = ["mine", "--cache-budget"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(matches!(split_mine_args(&bad), Err(CliError::Usage(_))));
        let bad2: Vec<String> = ["mine", "--cache-budget", "lots"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(matches!(split_mine_args(&bad2), Err(CliError::Usage(_))));
    }

    #[test]
    fn run_dispatch_and_usage() {
        let err = run(&["bogus".to_owned()]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        assert!(err.to_string().contains("USAGE"));
        let err2 = run(&["mine".to_owned(), "/nonexistent.csv".to_owned()]).unwrap_err();
        assert!(matches!(err2, CliError::Io(_)));
    }

    #[test]
    fn obs_flags_are_stripped_anywhere() {
        let argv: Vec<String> = [
            "--trace",
            "mine",
            "x.csv",
            "--stats-json",
            "out.json",
            "2",
            "--stats",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let (rest, obs) = split_obs_args(&argv).unwrap();
        assert_eq!(rest, vec!["mine", "x.csv", "2"]);
        assert_eq!(
            obs,
            ObsOptions {
                stats: true,
                stats_json: Some("out.json".to_owned()),
                trace: true,
            }
        );
        assert!(obs.wants_report());
        assert!(!ObsOptions::default().wants_report());
        // A dangling --stats-json is a usage error.
        let bad: Vec<String> = ["mine", "x.csv", "--stats-json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(matches!(split_obs_args(&bad), Err(CliError::Usage(_))));
    }

    #[test]
    fn serve_flags_are_validated() {
        let argv =
            |flags: &[&str]| -> Vec<String> { flags.iter().map(|s| s.to_string()).collect() };
        assert!(matches!(
            cmd_serve(&argv(&["--port", "notaport"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            cmd_serve(&argv(&["--bogus"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            cmd_serve(&argv(&["--wal-dir"])),
            Err(CliError::Usage(_))
        ));
        // The group-commit knobs refuse malformed values.
        assert!(matches!(
            cmd_serve(&argv(&["--wal-shards", "0"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            cmd_serve(&argv(&["--wal-shards", "four"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            cmd_serve(&argv(&["--commit-window-us", "-3"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            cmd_serve(&argv(&["--fsync", "sometimes"])),
            Err(CliError::Usage(_))
        ));
        // And accept well-formed ones.
        let config = parse_serve_config(&argv(&[
            "--wal-shards",
            "4",
            "--commit-window-us",
            "200",
            "--fsync",
            "always",
        ]))
        .unwrap();
        assert_eq!(config.wal_shards, 4);
        assert_eq!(config.commit_window, std::time::Duration::from_micros(200));
        assert_eq!(config.fsync, sqlnf_serve::FsyncMode::Always);
    }

    #[test]
    fn harness_flags_are_validated() {
        let argv =
            |flags: &[&str]| -> Vec<String> { flags.iter().map(|s| s.to_string()).collect() };
        let (seeds, config) = parse_harness_args(&argv(&[
            "--seed",
            "2..=4",
            "--wal-shards",
            "4",
            "--commit-window-us",
            "200",
            "--fsync",
            "batch",
            "--watch",
        ]))
        .unwrap();
        assert_eq!(seeds, vec![2, 3, 4]);
        assert_eq!(config.wal_shards, 4);
        assert_eq!(config.commit_window_us, 200);
        assert_eq!(config.fsync, sqlnf_serve::FsyncMode::Batch);
        assert!(config.watch);
        for bad in [
            &["--wal-shards", "0"][..],
            &["--commit-window-us", "soon"],
            &["--fsync", "never"],
            &["--fsync"],
        ] {
            assert!(
                matches!(parse_harness_args(&argv(bad)), Err(CliError::Usage(_))),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn client_runs_a_scripted_session() {
        let server = sqlnf_serve::Server::start(sqlnf_serve::ServeConfig::default()).unwrap();
        let addr = server.local_addr().to_string();
        let script = "\
CREATE TABLE t (
    a INT NOT NULL,
    CONSTRAINT k CERTAIN KEY (a)
);
INSERT INTO t VALUES (1);
INSERT INTO t VALUES (1);
STATS
QUIT
";
        let out = cmd_client(&addr, script).unwrap();
        assert!(out.contains("OK applied 1 statement"), "{out}");
        assert!(out.contains("ERR"), "{out}");
        assert!(out.contains("stmt.admitted 2"), "{out}");
        assert!(out.contains("stmt.rejected 1"), "{out}");
        server.shutdown().unwrap();
    }

    #[test]
    fn top_and_metrics_scrape_a_live_server() {
        let server = sqlnf_serve::Server::start(sqlnf_serve::ServeConfig::default()).unwrap();
        let addr = server.local_addr().to_string();
        let script = "\
CREATE TABLE t (
    a INT NOT NULL,
    CONSTRAINT k CERTAIN KEY (a)
);
INSERT INTO t VALUES (1);
QUIT
";
        cmd_client(&addr, script).unwrap();
        // One-shot scrape: must parse as an exposition and carry the
        // store counters.
        let text = cmd_client_metrics(&addr).unwrap();
        let samples = sqlnf_serve::parse_exposition(&text).unwrap();
        assert!(samples
            .iter()
            .any(|s| s.name == "sqlnf_store" && s.label("name") == Some("stmt.admitted")));
        // One `top` frame over the same exposition.
        let frame = cmd_top(&addr, &["--samples".to_owned(), "1".to_owned()]).unwrap();
        if sqlnf_obs::ENABLED {
            assert!(frame.contains("verb"), "{frame}");
            assert!(frame.contains("sql"), "{frame}");
        } else {
            assert!(frame.contains("store counters"), "{frame}");
        }
        // Flag validation.
        assert!(matches!(
            cmd_top(&addr, &["--samples".to_owned(), "x".to_owned()]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            cmd_top(&addr, &["--bogus".to_owned()]),
            Err(CliError::Usage(_))
        ));
        server.shutdown().unwrap();
    }

    #[test]
    fn dataset_emits_loadable_csv() {
        let csv = cmd_dataset("contractor", 1).unwrap();
        let table = table_from_csv("contractor", &csv).unwrap();
        assert_eq!(table.len(), 173);
        assert_eq!(table.schema().arity(), 22);
        // Full pipeline: the emitted dataset mines like the original.
        let out = cmd_mine(&csv, "contractor", 2, &MineOptions::default()).unwrap();
        assert!(out.contains("minimal FDs"));
        assert!(matches!(cmd_dataset("bogus", 1), Err(CliError::Usage(_))));
    }

    #[test]
    fn run_end_to_end_via_tempfiles() {
        let dir = std::env::temp_dir().join("sqlnf_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let sql_path = dir.join("p.sql");
        std::fs::write(&sql_path, DDL).unwrap();
        let out = run(&["lint".to_owned(), sql_path.display().to_string()]).unwrap();
        assert!(out.contains("purchase"));
        let csv_path = dir.join("c.csv");
        std::fs::write(&csv_path, "a,b\n1,2\n1,2\n").unwrap();
        let out2 = run(&[
            "mine".to_owned(),
            csv_path.display().to_string(),
            "2".to_owned(),
            "--cache-budget".to_owned(),
            "1m".to_owned(),
        ])
        .unwrap();
        assert!(out2.contains("minimal FDs"));
    }
}
