//! # sqlnf
//!
//! A production-quality Rust implementation of **SQL schema design**
//! after Köhler & Link, *SQL Schema Design: Foundations, Normal Forms,
//! and Normalization* (SIGMOD 2016): possible/certain functional
//! dependencies and keys over SQL tables (multisets with null markers),
//! linear-time implication, Boyce-Codd and SQL-BCNF normal forms with
//! their redundancy-freeness justifications, lossless VRNF
//! normalization, and FD discovery from data.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`model`] — the data model substrate (attribute sets, schemata,
//!   tables, similarity, satisfaction, projection/join);
//! * [`core`] — reasoning, normal forms, redundancy, decomposition;
//! * [`discovery`] — TANE-style mining of classical/possible/certain
//!   FDs and the nn/p/c/t/λ classification;
//! * [`datagen`] — embedded paper datasets and workload generators.
//!
//! ## Quickstart
//!
//! ```
//! use sqlnf::prelude::*;
//!
//! // PURCHASE(order_id, item, catalog, price) with nullable catalog.
//! let schema = TableSchema::new(
//!     "purchase",
//!     ["order_id", "item", "catalog", "price"],
//!     &["order_id", "item", "price"],
//! );
//! // The business rule of Example 3, as a total certain FD.
//! let sigma = Sigma::new().with(Fd::certain(
//!     schema.set(&["order_id", "item", "catalog"]),
//!     schema.attrs(),
//! ));
//! let design = SchemaDesign::new(schema, sigma);
//!
//! // The schema admits redundant values…
//! assert_eq!(design.is_vrnf(), Ok(false));
//! // …so normalize it (Algorithm 3): a lossless VRNF decomposition.
//! let normalized = design.normalize().unwrap();
//! assert!(normalized.children.iter().all(|c| c.is_vrnf() == Ok(true)));
//! ```

#![warn(missing_docs)]

pub mod cli;

pub use sqlnf_core as core;
pub use sqlnf_datagen as datagen;
pub use sqlnf_discovery as discovery;
pub use sqlnf_model as model;

/// One-stop re-exports for applications and examples.
pub mod prelude {
    pub use sqlnf_core::prelude::*;
    pub use sqlnf_discovery::prelude::*;
}
