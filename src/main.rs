//! The `sqlnf` CLI entry point; all logic lives in [`sqlnf::cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match sqlnf::cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(match e {
                sqlnf::cli::CliError::Usage(_) => 2,
                _ => 1,
            });
        }
    }
}
