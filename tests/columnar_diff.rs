//! Differential tests for the columnar storage path: mining from the
//! incrementally-maintained dictionary codes (`Encoded::new`, a
//! zero-copy borrow of the table's column store) must produce results
//! byte-identical to mining from a fresh row-major re-encode
//! (`Encoded::from_table_rows`, the reference algorithm the storage
//! refactor replaced).
//!
//! The interesting case is a table *after* UPDATE/DELETE churn: the
//! incremental dictionaries then assign different code values than a
//! fresh first-appearance scan would (retired codes are not recycled),
//! so agreement here pins down the invariant the whole columnar design
//! rests on — mined output depends only on the *grouping* the codes
//! induce, never on the code values themselves.

use std::time::Instant;

use sqlnf::discovery::check::Semantics;
use sqlnf::discovery::classify::classify_table_encoded;
use sqlnf::discovery::keys::mine_keys_encoded;
use sqlnf::discovery::mine::{mine_fds_encoded, MinerConfig};
use sqlnf::discovery::partition::Encoded;
use sqlnf::prelude::*;

/// A table whose column store has lived through the full DML mix:
/// inserts, value rewrites (both null→value and value→null), and row
/// deletions. The surviving rows' incremental codes are sparse and
/// out of first-appearance order.
fn churned_table() -> Table {
    let mut t = TableBuilder::new("churn", ["a", "b", "c", "d"], &[])
        .row(tuple![1i64, "x", 10i64, null])
        .row(tuple![2i64, "y", 10i64, "p"])
        .row(tuple![1i64, "x", 20i64, "q"])
        .row(tuple![3i64, "z", 20i64, "p"])
        .row(tuple![2i64, "y", 30i64, null])
        .row(tuple![1i64, "w", 30i64, "q"])
        .build();
    let s = t.schema().clone();
    // Rewrites: retire codes, mint new ones, flip null states.
    t.set_value(0, s.a("b"), Value::str("z"));
    t.set_value(1, s.a("d"), Value::Null);
    t.set_value(4, s.a("d"), Value::str("r"));
    t.set_value(5, s.a("a"), Value::Int(9));
    // Deletions shift every later row id.
    t.remove_row(2);
    t.remove_row(0);
    // Fresh appends on top of the churn.
    t.push(tuple![9i64, "x", 10i64, "p"]);
    t.push(tuple![3i64, "x", 40i64, null]);
    t.push(tuple![9i64, "w", 40i64, "p"]);
    t
}

fn corpus() -> Vec<(&'static str, Table, usize)> {
    vec![
        ("churned", churned_table(), 3),
        (
            "million-small",
            sqlnf::datagen::naumann::million_like_with_rows(11, 500),
            2,
        ),
        (
            "breast-cancer",
            sqlnf::datagen::naumann::breast_cancer_like(7),
            2,
        ),
    ]
}

#[test]
fn mined_fds_identical_across_encodings_semantics_and_threads() {
    for (name, t, max_lhs) in corpus() {
        let arity = t.schema().arity();
        let columnar = Encoded::new(&t);
        let reference = Encoded::from_table_rows(&t);
        for sem in Semantics::ALL {
            for threads in [1usize, 4] {
                let cfg = MinerConfig::new(sem)
                    .with_max_lhs(max_lhs)
                    .with_threads(threads);
                let a = mine_fds_encoded(&columnar, arity, cfg, Instant::now());
                let b = mine_fds_encoded(&reference, arity, cfg, Instant::now());
                assert_eq!(
                    a.fds, b.fds,
                    "{name}: FDs diverge under {sem:?} with {threads} threads"
                );
                assert_eq!(
                    a.candidates_checked, b.candidates_checked,
                    "{name}: lattice walk diverges under {sem:?} with {threads} threads"
                );
            }
        }
    }
}

#[test]
fn mined_keys_identical_across_encodings() {
    for (name, t, max_lhs) in corpus() {
        let arity = t.schema().arity();
        let columnar = Encoded::new(&t);
        let reference = Encoded::from_table_rows(&t);
        let a = mine_keys_encoded(&columnar, arity, max_lhs, usize::MAX);
        let b = mine_keys_encoded(&reference, arity, max_lhs, usize::MAX);
        assert_eq!(a, b, "{name}: mined keys diverge");
        // A starved cache changes only throughput, never the keys.
        let c = mine_keys_encoded(&columnar, arity, max_lhs, 0);
        assert_eq!(a, c, "{name}: cache budget changed the mined keys");
    }
}

#[test]
fn classification_identical_across_encodings() {
    for (name, t, max_lhs) in corpus() {
        let columnar = Encoded::new(&t);
        let reference = Encoded::from_table_rows(&t);
        let a = classify_table_encoded(&t, &columnar, max_lhs, usize::MAX);
        let b = classify_table_encoded(&t, &reference, max_lhs, usize::MAX);
        assert_eq!(a, b, "{name}: classification diverges");
    }
}
