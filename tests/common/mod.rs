#![allow(dead_code)]
//! Shared proptest strategies for the integration suites: random small
//! tables over a tiny domain, random constraint sets, random schemata.

use proptest::prelude::*;
use sqlnf::prelude::*;

/// Strategy: a value from {0, 1, 2, ⊥}.
pub fn small_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        2 => (0i64..3).prop_map(Value::Int),
        1 => Just(Value::Null),
    ]
}

/// Strategy: a table with `cols` columns named a0.. and 0..=max_rows
/// rows over the small domain (all columns nullable).
pub fn small_table(cols: usize, max_rows: usize) -> impl Strategy<Value = Table> {
    let row = proptest::collection::vec(small_value(), cols);
    proptest::collection::vec(row, 0..=max_rows).prop_map(move |rows| {
        let names: Vec<String> = (0..cols).map(|i| format!("a{i}")).collect();
        let schema = TableSchema::new("t", names, &[]);
        Table::from_rows(schema, rows.into_iter().map(Tuple::new))
    })
}

/// Strategy: an attribute subset of the first `cols` attributes.
pub fn attr_subset(cols: usize) -> impl Strategy<Value = AttrSet> {
    (0u32..(1 << cols)).prop_map(|bits| AttrSet(bits as u128))
}

/// Strategy: a non-empty attribute subset.
pub fn nonempty_subset(cols: usize) -> impl Strategy<Value = AttrSet> {
    (1u32..(1 << cols)).prop_map(|bits| AttrSet(bits as u128))
}

/// Strategy: one random constraint over `cols` attributes.
pub fn constraint(cols: usize) -> impl Strategy<Value = Constraint> {
    let modality = prop_oneof![Just(Modality::Possible), Just(Modality::Certain)];
    prop_oneof![
        3 => (attr_subset(cols), attr_subset(cols), modality.clone()).prop_map(
            |(lhs, rhs, modality)| Constraint::Fd(Fd { lhs, rhs, modality })
        ),
        1 => (attr_subset(cols), modality).prop_map(|(attrs, modality)| {
            Constraint::Key(Key { attrs, modality })
        }),
    ]
}

/// Strategy: a constraint set of up to `max` constraints.
pub fn sigma(cols: usize, max: usize) -> impl Strategy<Value = Sigma> {
    proptest::collection::vec(constraint(cols), 0..=max).prop_map(Sigma::from_constraints)
}

/// Strategy: a constraint set of certain keys and total FDs only (the
/// input class of Algorithm 3).
pub fn total_sigma(cols: usize, max: usize) -> impl Strategy<Value = Sigma> {
    let item = prop_oneof![
        3 => (nonempty_subset(cols), attr_subset(cols)).prop_map(|(lhs, extra)| {
            Constraint::Fd(Fd::certain(lhs, lhs | extra))
        }),
        1 => nonempty_subset(cols).prop_map(|attrs| Constraint::Key(Key::certain(attrs))),
    ];
    proptest::collection::vec(item, 0..=max).prop_map(Sigma::from_constraints)
}
