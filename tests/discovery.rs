//! Integration tests for the discovery crate against the naive
//! satisfaction checker of the model crate: the miner must find exactly
//! the minimal non-trivial FDs, under all four semantics, on random
//! instances — and the partition-based weak check must agree with the
//! possible-world enumerator of `sqlnf_core::related`.

mod common;

use common::*;
use proptest::prelude::*;
use sqlnf::core::related::weak_fd_holds;
use sqlnf::discovery::check::{fd_holds, Semantics};
use sqlnf::discovery::mine::{mine_fds, MinerConfig};
use sqlnf::discovery::partition::Encoded;
use sqlnf::prelude::*;

const COLS: usize = 3;

/// Reference: does `X → A` hold under `sem`, via the naive pairwise
/// checker? For [`Semantics::Classical`] nulls are first re-encoded as
/// an ordinary value.
fn holds_naive(table: &Table, x: AttrSet, a: Attr, sem: Semantics) -> bool {
    match sem {
        Semantics::Possible => satisfies_fd(table, &Fd::possible(x, AttrSet::single(a))),
        Semantics::Certain => satisfies_fd(table, &Fd::certain(x, AttrSet::single(a))),
        Semantics::Weak => satisfies_weak_fd(table, x, AttrSet::single(a)),
        Semantics::Classical => {
            // Null-as-value: replace ⊥ by a fresh constant.
            let rows = table.rows().iter().map(|t| {
                Tuple::new(
                    t.values()
                        .iter()
                        .map(|v| match v {
                            Value::Null => Value::str("__null__"),
                            other => other.clone(),
                        })
                        .collect::<Vec<_>>(),
                )
            });
            let total = Table::from_rows(table.schema().clone(), rows.collect::<Vec<_>>());
            satisfies_fd(&total, &Fd::possible(x, AttrSet::single(a)))
        }
    }
}

/// Reference: the set of (lhs, rhs-attr) pairs with minimal LHS.
fn minimal_fds_naive(table: &Table, sem: Semantics) -> Vec<(AttrSet, Attr)> {
    let t = AttrSet::first_n(COLS);
    let mut out = Vec::new();
    let mut subsets: Vec<AttrSet> = t.subsets().collect();
    subsets.sort_by_key(|s| (s.len(), s.0));
    for x in subsets {
        for a in t - x {
            if holds_naive(table, x, a, sem)
                && !out
                    .iter()
                    .any(|&(y, b): &(AttrSet, Attr)| b == a && y.is_subset(x) && y != x)
            {
                out.push((x, a));
            }
        }
    }
    out
}

/// Regression pin: [`Semantics::Weak`] byte-matches the `weak_fd_holds`
/// column of Example 2's satisfaction matrix in
/// `sqlnf_core::related` — the related-work reproduction the promoted
/// semantics generalizes. Both the partition check and the model
/// crate's pairwise evaluator must agree with the possible-world
/// enumeration on every tabulated row.
#[test]
fn example2_weak_column_matches_related_work() {
    let table = sqlnf_datagen::paper::example2_relation();
    let schema = table.schema();
    let enc = Encoded::new(&table);
    let col = |n: &str| schema.attr(n).expect("example2 column");
    // (lhs, rhs, weak_fd_holds column of the printed matrix)
    let matrix = [
        ("employee", "dept", true),
        ("employee", "manager", false),
        ("employee", "salary", true),
        ("dept", "dept", true),
        ("dept", "manager", true),
        ("manager", "employee", true),
        ("manager", "dept", true),
    ];
    for (l, r, want) in matrix {
        let (lhs, rhs) = (AttrSet::single(col(l)), AttrSet::single(col(r)));
        assert_eq!(weak_fd_holds(&table, lhs, rhs), want, "[24]weak {l}->{r}");
        assert_eq!(
            satisfies_weak_fd(&table, lhs, rhs),
            want,
            "satisfy layer {l}->{r}"
        );
        // The trivial d → d is inside its own LHS; `fd_holds` checks
        // proper targets only.
        if l != r {
            assert_eq!(
                fd_holds(&enc, lhs, col(r), Semantics::Weak),
                want,
                "partition check {l}->{r}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The miner finds exactly the minimal FDs, for every semantics.
    #[test]
    fn miner_matches_naive(table in small_table(COLS, 6)) {
        for sem in Semantics::ALL {
            let mined = mine_fds(&table, MinerConfig::new(sem).with_max_lhs(COLS));
            let mut got: Vec<(AttrSet, Attr)> = mined
                .fds
                .iter()
                .flat_map(|fd| fd.rhs.iter().map(move |a| (fd.lhs, a)))
                .collect();
            let mut want = minimal_fds_naive(&table, sem);
            got.sort_by_key(|(x, a)| (x.0, a.index()));
            want.sort_by_key(|(x, a)| (x.0, a.index()));
            prop_assert_eq!(&got, &want, "{:?} on\n{}", sem, table);
        }
    }

    /// Certain-mined FDs are a subset of possible-mined ones in the
    /// satisfaction sense: every certain FD also holds possibly.
    #[test]
    fn certain_implies_possible(table in small_table(COLS, 6)) {
        let mined = mine_fds(&table, MinerConfig::new(Semantics::Certain).with_max_lhs(COLS));
        for fd in &mined.fds {
            for a in fd.rhs {
                prop_assert!(satisfies_fd(
                    &table,
                    &Fd::possible(fd.lhs, AttrSet::single(a))
                ));
            }
        }
    }

    /// Cached partition products agree with the direct row grouping of
    /// [`Partition::by_set`], for every semantics, on a level-ordered
    /// sweep of the whole lattice (so the memo is exercised both cold
    /// and warm).
    #[test]
    fn ctx_partitions_match_by_set(table in small_table(4, 8)) {
        use sqlnf::discovery::cache::PartitionCtx;
        use sqlnf::discovery::check::null_semantics;
        use sqlnf::discovery::partition::{Encoded, Partition};
        let enc = Encoded::new(&table);
        let mut subsets: Vec<AttrSet> = AttrSet::first_n(4).subsets().collect();
        subsets.sort_by_key(|s| (s.len(), s.0));
        for sem in Semantics::ALL {
            let ns = null_semantics(sem);
            let mut ctx = PartitionCtx::new(&enc, ns);
            for &x in &subsets {
                let want = Partition::by_set(&enc, x, ns);
                prop_assert_eq!(&*ctx.partition(x), &want, "{:?} {:?} on\n{}", sem, x, table);
            }
        }
    }

    /// The mined FDs are invariant under the cache budget (none, tiny,
    /// unbounded) and the thread count — caching and the worker pool
    /// change throughput only, never results.
    #[test]
    fn miner_invariant_under_budget_and_threads(table in small_table(8, 12)) {
        let norm = |mut fds: Vec<sqlnf::discovery::mine::MinedFd>| {
            fds.sort_by_key(|f| (f.lhs.0, f.rhs.0));
            fds
        };
        for sem in Semantics::ALL {
            let reference = norm(mine_fds(&table, MinerConfig::new(sem).with_max_lhs(3)).fds);
            for budget in [0usize, 4096, usize::MAX] {
                for threads in [1usize, 2, 4, 8] {
                    let config = MinerConfig::new(sem)
                        .with_max_lhs(3)
                        .with_threads(threads)
                        .with_cache_budget(budget);
                    let got = norm(mine_fds(&table, config).fds);
                    prop_assert_eq!(
                        &got, &reference,
                        "{:?} budget={} threads={} on\n{}", sem, budget, threads, table
                    );
                }
            }
        }
    }

    /// The footprint-keyed [`ProbeCache`] is transparent: for every
    /// LHS it visits exactly the weak-pair set of a fresh
    /// per-candidate [`ProbeIndex`] build, and its batch target check
    /// equals the pairwise code-agreement fold over those pairs.
    /// Each LHS is probed three times so footprints cross the policy
    /// transitions (direct scan → index build → cache hit).
    #[test]
    fn probe_cache_matches_fresh_index(table in small_table(4, 10)) {
        use sqlnf::discovery::check::{probe_weak_pairs, ProbeCache};
        use sqlnf::discovery::partition::Encoded;
        use std::collections::BTreeSet;
        let enc = Encoded::new(&table);
        let all = AttrSet::first_n(4);
        let probes = ProbeCache::new(&enc);
        for x in all.subsets() {
            // Reference: a fresh index per probe, as the seed code did.
            let mut want = BTreeSet::new();
            probe_weak_pairs(&enc, x, |r, s| {
                want.insert((r.min(s), r.max(s)));
                true
            });
            let targets = all - x;
            let mut want_targets = targets;
            for &(r, s) in &want {
                let mut still = AttrSet::EMPTY;
                for a in want_targets {
                    if enc.code(r, a) == enc.code(s, a) {
                        still.insert(a);
                    }
                }
                want_targets = still;
            }
            for round in 0..3 {
                let mut got = BTreeSet::new();
                probes.weak_pairs(&enc, x, |r, s| {
                    got.insert((r.min(s), r.max(s)));
                    true
                });
                prop_assert_eq!(
                    &got, &want,
                    "round {} x={:?} on\n{}", round, x, table
                );
                let got_targets = probes.fd_targets(&enc, x, targets);
                prop_assert_eq!(
                    got_targets, want_targets,
                    "round {} x={:?} on\n{}", round, x, table
                );
            }
        }
    }

    /// The partition-based weak check agrees with the related-work
    /// possible-world enumerator: `X →_weak A` iff some completion of
    /// the nulls satisfies the FD classically. (The enumerator refuses
    /// more than 8 nulls, so instances beyond that are discarded.)
    #[test]
    fn weak_check_matches_possible_worlds(table in small_table(COLS, 4)) {
        let nulls: usize = table
            .rows()
            .iter()
            .flat_map(|t| t.values())
            .filter(|v| v.is_null())
            .count();
        prop_assume!(nulls <= 8);
        let enc = Encoded::new(&table);
        let t = AttrSet::first_n(COLS);
        for x in t.subsets() {
            for a in t - x {
                prop_assert_eq!(
                    fd_holds(&enc, x, a, Semantics::Weak),
                    weak_fd_holds(&table, x, AttrSet::single(a)),
                    "{:?} ->weak {:?} on\n{}", x, a, table
                );
            }
        }
    }

    /// The pointwise semantics lattice: certain ⟹ possible ⟹ weak and
    /// classical ⟹ weak on every instance and every candidate FD; on a
    /// null-free instance all four verdicts coincide.
    #[test]
    fn semantics_lattice_pointwise(table in small_table(COLS, 6)) {
        let enc = Encoded::new(&table);
        let null_free = table
            .rows()
            .iter()
            .all(|t| t.values().iter().all(|v| !v.is_null()));
        let t = AttrSet::first_n(COLS);
        for x in t.subsets() {
            for a in t - x {
                let verdict = |sem| fd_holds(&enc, x, a, sem);
                let weak = verdict(Semantics::Weak);
                prop_assert!(!verdict(Semantics::Certain) || verdict(Semantics::Possible));
                prop_assert!(!verdict(Semantics::Possible) || weak);
                prop_assert!(!verdict(Semantics::Classical) || weak);
                if null_free {
                    for sem in Semantics::ALL {
                        prop_assert_eq!(verdict(sem), weak, "{:?} on\n{}", sem, table);
                    }
                }
            }
        }
    }

    /// Every mined λ-FD of the classifier is a satisfied total c-FD
    /// whose LHS is not a certain key, and its projection ratio is the
    /// true one.
    #[test]
    fn classifier_lambdas_are_genuine(table in small_table(COLS, 6)) {
        prop_assume!(!table.is_empty());
        let cls = sqlnf::discovery::classify::classify_table(&table, COLS);
        for lam in &cls.lambda_fds {
            let total = Fd::certain(lam.lhs, lam.lhs | lam.rhs);
            prop_assert!(satisfies_fd(&table, &total));
            prop_assert!(!satisfies_key(&table, &Key::certain(lam.lhs)));
            let proj = project_set(&table, lam.lhs | lam.rhs, "p");
            let ratio = proj.len() as f64 / table.len() as f64;
            prop_assert!((ratio - lam.relative_projection_size).abs() < 1e-12);
        }
    }
}
