//! Integration tests for the discovery crate against the naive
//! satisfaction checker of the model crate: the miner must find exactly
//! the minimal non-trivial FDs, under all three semantics, on random
//! instances.

mod common;

use common::*;
use proptest::prelude::*;
use sqlnf::discovery::check::Semantics;
use sqlnf::discovery::mine::{mine_fds, MinerConfig};
use sqlnf::prelude::*;

const COLS: usize = 3;

/// Reference: does `X → A` hold under `sem`, via the naive pairwise
/// checker? For [`Semantics::Classical`] nulls are first re-encoded as
/// an ordinary value.
fn holds_naive(table: &Table, x: AttrSet, a: Attr, sem: Semantics) -> bool {
    match sem {
        Semantics::Possible => satisfies_fd(table, &Fd::possible(x, AttrSet::single(a))),
        Semantics::Certain => satisfies_fd(table, &Fd::certain(x, AttrSet::single(a))),
        Semantics::Classical => {
            // Null-as-value: replace ⊥ by a fresh constant.
            let rows = table.rows().iter().map(|t| {
                Tuple::new(
                    t.values()
                        .iter()
                        .map(|v| match v {
                            Value::Null => Value::str("__null__"),
                            other => other.clone(),
                        })
                        .collect::<Vec<_>>(),
                )
            });
            let total = Table::from_rows(table.schema().clone(), rows.collect::<Vec<_>>());
            satisfies_fd(&total, &Fd::possible(x, AttrSet::single(a)))
        }
    }
}

/// Reference: the set of (lhs, rhs-attr) pairs with minimal LHS.
fn minimal_fds_naive(table: &Table, sem: Semantics) -> Vec<(AttrSet, Attr)> {
    let t = AttrSet::first_n(COLS);
    let mut out = Vec::new();
    let mut subsets: Vec<AttrSet> = t.subsets().collect();
    subsets.sort_by_key(|s| (s.len(), s.0));
    for x in subsets {
        for a in t - x {
            if holds_naive(table, x, a, sem)
                && !out
                    .iter()
                    .any(|&(y, b): &(AttrSet, Attr)| b == a && y.is_subset(x) && y != x)
            {
                out.push((x, a));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The miner finds exactly the minimal FDs, for every semantics.
    #[test]
    fn miner_matches_naive(table in small_table(COLS, 6)) {
        for sem in [Semantics::Classical, Semantics::Possible, Semantics::Certain] {
            let mined = mine_fds(&table, MinerConfig::new(sem).with_max_lhs(COLS));
            let mut got: Vec<(AttrSet, Attr)> = mined
                .fds
                .iter()
                .flat_map(|fd| fd.rhs.iter().map(move |a| (fd.lhs, a)))
                .collect();
            let mut want = minimal_fds_naive(&table, sem);
            got.sort_by_key(|(x, a)| (x.0, a.index()));
            want.sort_by_key(|(x, a)| (x.0, a.index()));
            prop_assert_eq!(&got, &want, "{:?} on\n{}", sem, table);
        }
    }

    /// Certain-mined FDs are a subset of possible-mined ones in the
    /// satisfaction sense: every certain FD also holds possibly.
    #[test]
    fn certain_implies_possible(table in small_table(COLS, 6)) {
        let mined = mine_fds(&table, MinerConfig::new(Semantics::Certain).with_max_lhs(COLS));
        for fd in &mined.fds {
            for a in fd.rhs {
                prop_assert!(satisfies_fd(
                    &table,
                    &Fd::possible(fd.lhs, AttrSet::single(a))
                ));
            }
        }
    }

    /// Cached partition products agree with the direct row grouping of
    /// [`Partition::by_set`], for every semantics, on a level-ordered
    /// sweep of the whole lattice (so the memo is exercised both cold
    /// and warm).
    #[test]
    fn ctx_partitions_match_by_set(table in small_table(4, 8)) {
        use sqlnf::discovery::cache::PartitionCtx;
        use sqlnf::discovery::check::null_semantics;
        use sqlnf::discovery::partition::{Encoded, Partition};
        let enc = Encoded::new(&table);
        let mut subsets: Vec<AttrSet> = AttrSet::first_n(4).subsets().collect();
        subsets.sort_by_key(|s| (s.len(), s.0));
        for sem in [Semantics::Classical, Semantics::Possible, Semantics::Certain] {
            let ns = null_semantics(sem);
            let mut ctx = PartitionCtx::new(&enc, ns);
            for &x in &subsets {
                let want = Partition::by_set(&enc, x, ns);
                prop_assert_eq!(&*ctx.partition(x), &want, "{:?} {:?} on\n{}", sem, x, table);
            }
        }
    }

    /// The mined FDs are invariant under the cache budget (none, tiny,
    /// unbounded) and the thread count — caching and the worker pool
    /// change throughput only, never results.
    #[test]
    fn miner_invariant_under_budget_and_threads(table in small_table(8, 12)) {
        let norm = |mut fds: Vec<sqlnf::discovery::mine::MinedFd>| {
            fds.sort_by_key(|f| (f.lhs.0, f.rhs.0));
            fds
        };
        for sem in [Semantics::Classical, Semantics::Possible, Semantics::Certain] {
            let reference = norm(mine_fds(&table, MinerConfig::new(sem).with_max_lhs(3)).fds);
            for budget in [0usize, 4096, usize::MAX] {
                for threads in [1usize, 2, 4, 8] {
                    let config = MinerConfig::new(sem)
                        .with_max_lhs(3)
                        .with_threads(threads)
                        .with_cache_budget(budget);
                    let got = norm(mine_fds(&table, config).fds);
                    prop_assert_eq!(
                        &got, &reference,
                        "{:?} budget={} threads={} on\n{}", sem, budget, threads, table
                    );
                }
            }
        }
    }

    /// The footprint-keyed [`ProbeCache`] is transparent: for every
    /// LHS it visits exactly the weak-pair set of a fresh
    /// per-candidate [`ProbeIndex`] build, and its batch target check
    /// equals the pairwise code-agreement fold over those pairs.
    /// Each LHS is probed three times so footprints cross the policy
    /// transitions (direct scan → index build → cache hit).
    #[test]
    fn probe_cache_matches_fresh_index(table in small_table(4, 10)) {
        use sqlnf::discovery::check::{probe_weak_pairs, ProbeCache};
        use sqlnf::discovery::partition::Encoded;
        use std::collections::BTreeSet;
        let enc = Encoded::new(&table);
        let all = AttrSet::first_n(4);
        let probes = ProbeCache::new(&enc);
        for x in all.subsets() {
            // Reference: a fresh index per probe, as the seed code did.
            let mut want = BTreeSet::new();
            probe_weak_pairs(&enc, x, |r, s| {
                want.insert((r.min(s), r.max(s)));
                true
            });
            let targets = all - x;
            let mut want_targets = targets;
            for &(r, s) in &want {
                let mut still = AttrSet::EMPTY;
                for a in want_targets {
                    if enc.code(r, a) == enc.code(s, a) {
                        still.insert(a);
                    }
                }
                want_targets = still;
            }
            for round in 0..3 {
                let mut got = BTreeSet::new();
                probes.weak_pairs(&enc, x, |r, s| {
                    got.insert((r.min(s), r.max(s)));
                    true
                });
                prop_assert_eq!(
                    &got, &want,
                    "round {} x={:?} on\n{}", round, x, table
                );
                let got_targets = probes.fd_targets(&enc, x, targets);
                prop_assert_eq!(
                    got_targets, want_targets,
                    "round {} x={:?} on\n{}", round, x, table
                );
            }
        }
    }

    /// Every mined λ-FD of the classifier is a satisfied total c-FD
    /// whose LHS is not a certain key, and its projection ratio is the
    /// true one.
    #[test]
    fn classifier_lambdas_are_genuine(table in small_table(COLS, 6)) {
        prop_assume!(!table.is_empty());
        let cls = sqlnf::discovery::classify::classify_table(&table, COLS);
        for lam in &cls.lambda_fds {
            let total = Fd::certain(lam.lhs, lam.lhs | lam.rhs);
            prop_assert!(satisfies_fd(&table, &total));
            prop_assert!(!satisfies_key(&table, &Key::certain(lam.lhs)));
            let proj = project_set(&table, lam.lhs | lam.rhs, "p");
            let ratio = proj.len() as f64 / table.len() as f64;
            prop_assert!((ratio - lam.relative_projection_size).abs() < 1e-12);
        }
    }
}
