//! End-to-end pipelines across all crates: CSV in, mining,
//! normalization, instance decomposition, joins back, redundancy
//! accounting — on the evaluation datasets.

use sqlnf::datagen::{contact, contractor, paper};
use sqlnf::prelude::*;

#[test]
fn csv_roundtrip_through_the_pipeline() {
    // Serialize Figure 5's instance to CSV, load it back, re-check the
    // constraints and decompose.
    let original = paper::purchase_fig5();
    let csv = table_to_csv(&original);
    let loaded = table_from_csv("purchase", &csv).expect("valid CSV");
    assert!(original.multiset_eq(&loaded));

    let s = loaded.schema().clone();
    let fd = Fd::certain(s.set(&["item", "catalog"]), s.set(&["price"]));
    assert!(satisfies_fd(&loaded, &fd));
    let (rest, xy) = decompose_instance_by_cfd(&loaded, &fd);
    let rejoined = reorder_columns(&join(&rest, &xy, "j"), s.column_names());
    assert!(loaded.multiset_eq(&rejoined));
}

#[test]
fn contact_pipeline_mine_then_normalize() {
    let table = contact::contact_full(77);
    let schema = table.schema().clone();

    // Mining finds the planted λ-FD (or a sub-LHS of it).
    let cls = classify_table(&table, 3);
    let sigma_fd = contact::contact_sigma_fd(&schema);
    let found = cls
        .lambda_fds
        .iter()
        .any(|l| l.lhs.is_subset(sigma_fd.lhs) && !(l.rhs & sigma_fd.rhs).is_empty());
    assert!(found, "λ-FD not discovered: {cls:?}");

    // Normalizing by σ is lossless and keys the projection.
    let design = SchemaDesign::new(schema.clone(), Sigma::new().with(sigma_fd));
    let normalized = design.normalize().unwrap();
    assert!(normalized.decomposition.is_lossless_on(&table));
    for child in &normalized.children {
        assert_eq!(child.is_vrnf(), Ok(true));
    }
    let parts = normalized.decomposition.apply(&table);
    let set_part = parts
        .iter()
        .find(|p| p.len() == 105)
        .expect("105-row projection");
    let ss = set_part.schema().clone();
    assert!(satisfies_key(
        set_part,
        &Key::certain(ss.set(&["first_name", "last_name", "city"]))
    ));
}

#[test]
fn contractor_pipeline_full_normalization() {
    let table = contractor::contractor(5);
    let sigma = contractor::contractor_sigma(table.schema());
    assert!(satisfies_all(&table, &sigma));

    let design = SchemaDesign::new(table.schema().clone(), sigma);
    assert_eq!(design.is_vrnf(), Ok(false));
    let normalized = design.normalize().unwrap();
    assert_eq!(normalized.children.len(), 4);
    assert!(normalized.decomposition.is_lossless_on(&table));

    // After normalization the total cell count matches the paper.
    let parts = normalized.decomposition.apply(&table);
    let cells: usize = parts.iter().map(Table::cell_count).sum();
    assert_eq!(table.cell_count(), 3806);
    assert_eq!(cells, 3720);

    // Every child validates its own constraints on its own part.
    for (child, part) in normalized.children.iter().zip(&parts) {
        assert!(
            satisfies_all(part, child.sigma()),
            "{} violates its schema constraints",
            child.schema().name()
        );
    }
}

#[test]
fn normalized_children_reject_bad_updates() {
    // The point of normalization: the projection's c-key now *rejects*
    // the update anomaly that redundancy used to permit.
    let table = paper::purchase_fig5();
    let s = table.schema().clone();
    let fd = Fd::certain(s.set(&["item", "catalog"]), s.set(&["price"]));
    let (_, mut xy) = decompose_instance_by_cfd(&table, &fd);
    let xys = xy.schema().clone();

    // In the projection, inserting a second (Fitbit Surge, Amazon) row
    // with a different price violates p<item,catalog> — the anomaly is
    // caught locally, without scanning all orders.
    xy.push(tuple!["Fitbit Surge", "Amazon", 999i64]);
    assert!(!satisfies_key(
        &xy,
        &Key::possible(xys.set(&["item", "catalog"]))
    ));
}

#[test]
fn design_report_is_stable() {
    // The printable form of a normalized design (used by the examples)
    // stays sensible: names, NOT NULL markers, constraint text.
    let schema = paper::purchase_schema(&["order_id", "item", "price"]);
    let design = SchemaDesign::new(schema.clone(), paper::example3_sigma(&schema));
    let n = design.normalize().unwrap();
    let rendered: Vec<String> = n.children.iter().map(|c| c.to_string()).collect();
    assert!(rendered
        .iter()
        .any(|r| r.contains("c<order_id,item,catalog>")));
    assert!(rendered.iter().all(|r| r.contains("purchase_")));
}
