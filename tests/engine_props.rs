//! Model-based property testing of the storage engine: random
//! operation sequences against a declared constraint set. Invariants:
//!
//! 1. every reachable state satisfies the NFS and every constraint;
//! 2. an operation is accepted iff applying it naively would leave the
//!    instance valid (the engine is a *sound and complete* gate);
//! 3. rejected operations leave the state byte-identical.

mod common;

use common::*;
use proptest::prelude::*;
use sqlnf::model::incremental::IndexBank;
use sqlnf::prelude::*;

const COLS: usize = 3;

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<Value>),
    Update {
        row: usize,
        col: usize,
        value: Value,
    },
    Delete {
        row: usize,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => proptest::collection::vec(small_value(), COLS).prop_map(Op::Insert),
        3 => (0usize..6, 0usize..COLS, small_value())
            .prop_map(|(row, col, value)| Op::Update { row, col, value }),
        1 => (0usize..6).prop_map(|row| Op::Delete { row }),
    ]
}

fn schema_with_nfs(nfs: AttrSet) -> TableSchema {
    let names: Vec<String> = (0..COLS).map(|i| format!("a{i}")).collect();
    let nn: Vec<String> = nfs.iter().map(|a| format!("a{}", a.index())).collect();
    let nn_refs: Vec<&str> = nn.iter().map(String::as_str).collect();
    TableSchema::new("t", names, &nn_refs)
}

/// Reference semantics: would the naive application of `op` leave a
/// valid instance?
fn naive_would_be_valid(current: &Table, sigma: &Sigma, op: &Op) -> Option<Table> {
    let mut next_rows = current.rows().to_vec();
    match op {
        Op::Insert(values) => next_rows.push(Tuple::new(values.clone())),
        Op::Update { row, col, value } => {
            if *row >= next_rows.len() {
                return None; // out of range: rejected for other reasons
            }
            *next_rows[*row].get_mut(Attr::from(*col)) = value.clone();
        }
        Op::Delete { row } => {
            if *row >= next_rows.len() {
                return None;
            }
            next_rows.remove(*row);
        }
    }
    let next = Table::from_rows(current.schema().clone(), next_rows);
    if next.satisfies_nfs() && satisfies_all(&next, sigma) {
        Some(next)
    } else {
        None
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn engine_is_a_sound_and_complete_gate(
        sigma in sigma(COLS, 3),
        nfs in attr_subset(COLS),
        ops in proptest::collection::vec(op_strategy(), 1..25),
    ) {
        let schema = schema_with_nfs(nfs);
        let mut db = Database::new();
        db.create_table(schema.clone(), sigma.clone()).unwrap();

        for op in &ops {
            let before = db.table("t").unwrap().data().clone();
            let expected = naive_would_be_valid(&before, &sigma, op);
            let result = match op {
                Op::Insert(values) => db.insert("t", Tuple::new(values.clone())),
                Op::Update { row, col, value } => {
                    db.update("t", *row, &format!("a{col}"), value.clone())
                }
                Op::Delete { row } => db.delete("t", *row).map(|_| ()),
            };
            let after = db.table("t").unwrap().data().clone();
            match (result, expected) {
                (Ok(()), Some(next)) => {
                    prop_assert!(after.multiset_eq(&next) || after.rows() == next.rows());
                }
                (Ok(()), None) => {
                    prop_assert!(false, "engine accepted an invalid {op:?}\n{after}");
                }
                (Err(_), Some(_)) => {
                    prop_assert!(false, "engine rejected a valid {op:?}\n{before}");
                }
                (Err(_), None) => {
                    prop_assert!(
                        after.rows() == before.rows(),
                        "rejected op mutated state"
                    );
                }
            }
            // Invariant 1 at every step.
            prop_assert!(after.satisfies_nfs());
            prop_assert!(satisfies_all(&after, &sigma));
        }
    }

    /// The incrementally-maintained index bank is behaviorally
    /// equivalent to a bank rebuilt from scratch after every operation:
    /// for any probe row, both agree on admissibility and on the first
    /// violated constraint. (The conflicting *row id* may legitimately
    /// differ — deletion compacts groups with `swap_remove` — so only
    /// the decision and the constraint index are compared.)
    #[test]
    fn incremental_bank_matches_rebuild(
        sigma in sigma(COLS, 3),
        nfs in attr_subset(COLS),
        ops in proptest::collection::vec(op_strategy(), 1..20),
        probes in proptest::collection::vec(
            proptest::collection::vec(small_value(), COLS), 1..5),
    ) {
        let schema = schema_with_nfs(nfs);
        let mut db = Database::new();
        db.create_table(schema, sigma.clone()).unwrap();

        for op in &ops {
            let _ = match op {
                Op::Insert(values) => db.insert("t", Tuple::new(values.clone())),
                Op::Update { row, col, value } => {
                    db.update("t", *row, &format!("a{col}"), value.clone())
                }
                Op::Delete { row } => db.delete("t", *row).map(|_| ()),
            };
            let stored = db.table("t").unwrap();
            let rebuilt = IndexBank::build(&sigma, stored.data());
            for p in &probes {
                let probe = Tuple::new(p.clone());
                let incremental = stored.bank().can_insert(stored.data().rows(), &probe);
                let reference = rebuilt.can_insert(stored.data().rows(), &probe);
                match (incremental, reference) {
                    (Ok(()), Ok(())) => {}
                    (Err((ci, _)), Err((cj, _))) => prop_assert_eq!(
                        ci, cj,
                        "banks blame different constraints after {op:?}"
                    ),
                    (a, b) => prop_assert!(
                        false,
                        "bank divergence after {op:?}: incremental {a:?} vs rebuilt {b:?}"
                    ),
                }
            }
        }
    }
}
