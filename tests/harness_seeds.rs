//! Seed-regression suite for the fault-injection harness: seeds found
//! during development, committed so the exact scenarios they exercise
//! — kill racing the snapshotter, a corrupted WAL tail losing a
//! suffix, DDL issued concurrently with DML — replay on every CI run.
//!
//! Each test pins the *shape* of the seed's plan and workload (so a
//! generator change that silently repurposes the seed fails loudly)
//! and then requires the full differential run to pass.

use sqlnf_harness::{plan, run_one, Corruption, HarnessConfig};

fn config(seed: u64, kill_prob: f64, corrupt_prob: f64) -> HarnessConfig {
    HarnessConfig {
        seed,
        ops: 300,
        clients: 4,
        kill_prob,
        corrupt_prob,
    }
}

/// Seed 10: a crash injected while the auto-snapshotter is running
/// hot (a snapshot after every statement), so the kill lands amid
/// generation switches. Recovery must still reproduce every flushed
/// append.
#[test]
fn seed_10_kill_during_snapshot() {
    let c = config(10, 1.0, 0.0);
    let p = plan(c.seed, c.ops, c.kill_prob, c.corrupt_prob);
    assert!(p.kill_after.is_some(), "seed must arm the kill");
    assert!(
        (1..=4).contains(&p.snapshot_every),
        "seed must snapshot aggressively, got cadence {}",
        p.snapshot_every
    );
    let report = run_one(&c).expect("differential run passes");
    assert!(report.killed);
    assert!(
        report.fault_fired,
        "the workload must reach the crash point"
    );
    assert!(
        report.snapshots >= 10,
        "kill must race a busy snapshotter, got {} snapshots",
        report.snapshots
    );
    // No corruption: every flushed append must survive the crash.
    assert_eq!(report.recovered, report.admitted);
}

/// Seed 25: crash plus a torn WAL tail (truncation) that destroys a
/// suffix of the admitted history — recovery must come back as a
/// strict prefix, never a hole and never a panic. The seed's snapshot
/// cadence is 0, so the whole history lives in the generation-0 log
/// and the truncation is guaranteed to clip its final frame in every
/// interleaving.
#[test]
fn seed_25_corrupt_tail_loses_a_suffix() {
    let c = config(25, 1.0, 1.0);
    let p = plan(c.seed, c.ops, c.kill_prob, c.corrupt_prob);
    assert!(p.kill_after.is_some(), "seed must arm the kill");
    assert!(
        matches!(p.corruption, Some(Corruption::TruncateTail(_))),
        "seed must truncate the WAL tail, got {:?}",
        p.corruption
    );
    assert_eq!(
        p.snapshot_every, 0,
        "no auto-snapshots: the live log must hold the whole history"
    );
    let report = run_one(&c).expect("differential run passes");
    assert!(report.killed && report.corrupted);
    assert!(
        report.recovered < report.admitted,
        "corruption must cost this seed a suffix ({} of {})",
        report.recovered,
        report.admitted
    );
}

/// Seed 7: a DDL-heavy stream — CREATE TABLEs keep arriving mid-run
/// while four clients insert concurrently — shut down gracefully; the
/// recovered store must equal the full serial replay.
#[test]
fn seed_7_concurrent_ddl() {
    let c = config(7, 0.0, 0.0);
    let report = run_one(&c).expect("differential run passes");
    assert!(!report.killed && !report.corrupted);
    assert!(
        report.mid_stream_ddl >= 3,
        "seed must issue DDL mid-stream, got {}",
        report.mid_stream_ddl
    );
    assert!(report.tables >= 4);
    assert_eq!(report.recovered, report.admitted);
    assert!(report.minecheck.tables >= 4);
    assert!(report.minecheck.oracle_queries > 0);
}
