//! Seed-regression suite for the fault-injection harness: seeds found
//! during development, committed so the exact scenarios they exercise
//! — kill racing the snapshotter, a corrupted WAL tail losing a
//! suffix, DDL issued concurrently with DML — replay on every CI run.
//!
//! Each test pins the *shape* of the seed's plan and workload (so a
//! generator change that silently repurposes the seed fails loudly)
//! and then requires the full differential run to pass.

use sqlnf_harness::{plan, run_one, Corruption, HarnessConfig};
use sqlnf_serve::{parse_exposition, Client, ServeConfig, Server, Store};
use std::collections::BTreeMap;

fn config(seed: u64, kill_prob: f64, corrupt_prob: f64) -> HarnessConfig {
    HarnessConfig {
        seed,
        ops: 300,
        clients: 4,
        kill_prob,
        corrupt_prob,
        ..HarnessConfig::default()
    }
}

/// Seed 10: a crash injected while the auto-snapshotter is running
/// hot (a snapshot after every statement), so the kill lands amid
/// generation switches. Recovery must still reproduce every flushed
/// append.
#[test]
fn seed_10_kill_during_snapshot() {
    let c = config(10, 1.0, 0.0);
    let p = plan(c.seed, c.ops, c.kill_prob, c.corrupt_prob);
    assert!(p.kill_after.is_some(), "seed must arm the kill");
    assert!(
        (1..=4).contains(&p.snapshot_every),
        "seed must snapshot aggressively, got cadence {}",
        p.snapshot_every
    );
    let report = run_one(&c).expect("differential run passes");
    assert!(report.killed);
    assert!(
        report.fault_fired,
        "the workload must reach the crash point"
    );
    assert!(
        report.snapshots >= 10,
        "kill must race a busy snapshotter, got {} snapshots",
        report.snapshots
    );
    // No corruption: every flushed append must survive the crash.
    assert_eq!(report.recovered, report.admitted);
}

/// Seed 25: crash plus a torn WAL tail (truncation) that destroys a
/// suffix of the admitted history — recovery must come back as a
/// strict prefix, never a hole and never a panic. The seed's snapshot
/// cadence is 0, so the whole history lives in the generation-0 log
/// and the truncation is guaranteed to clip its final frame in every
/// interleaving.
#[test]
fn seed_25_corrupt_tail_loses_a_suffix() {
    let c = config(25, 1.0, 1.0);
    let p = plan(c.seed, c.ops, c.kill_prob, c.corrupt_prob);
    assert!(p.kill_after.is_some(), "seed must arm the kill");
    assert!(
        matches!(p.corruption, Some(Corruption::TruncateTail(_))),
        "seed must truncate the WAL tail, got {:?}",
        p.corruption
    );
    assert_eq!(
        p.snapshot_every, 0,
        "no auto-snapshots: the live log must hold the whole history"
    );
    let report = run_one(&c).expect("differential run passes");
    assert!(report.killed && report.corrupted);
    assert!(
        report.recovered < report.admitted,
        "corruption must cost this seed a suffix ({} of {})",
        report.recovered,
        report.admitted
    );
}

/// Observability seed: the flight recorder and the `METRICS`
/// exposition must agree with the oplog — the harness's ground-truth
/// serial history. Drives a deterministic workload (half the inserts
/// replay a key, so admissions and refusals interleave), scrapes
/// `METRICS`/`TRACE` while the server is live, kills it, and checks
/// that the number of `serve.stmt.admitted` flight events stamped with
/// this store's nonce equals the oplog length — and stays equal after
/// recovery, which replays without re-admitting.
#[test]
fn seed_flight_recorder_and_metrics_match_oplog() {
    let dir = std::env::temp_dir().join(format!("sqlnf_seed_flight_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::start(ServeConfig {
        workers: 2,
        wal_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .expect("bind");
    let store = server.store().clone();
    store.enable_oplog();
    let nonce = store.nonce();
    let addr = server.local_addr();

    let mut c = Client::connect(addr).expect("connect");
    c.expect_ok("CREATE TABLE t (a INT NOT NULL, b INT NOT NULL, CONSTRAINT k CERTAIN KEY (a));")
        .expect("ddl");
    let mut admitted = 1usize; // the DDL
    for i in 0..40i64 {
        // Ids repeat pairwise (0,0,1,1,…): the first of each pair is
        // admitted, the second violates the CERTAIN KEY and is refused.
        let reply = c
            .request(&format!("INSERT INTO t VALUES ({}, {i});", i / 2))
            .expect("reply");
        assert_eq!(reply.ok, i % 2 == 0, "{}", reply.message);
        if reply.ok {
            admitted += 1;
        }
    }
    assert_eq!(admitted, 21);

    // Live scrape: the exposition parses, and every `sqlnf_store` gauge
    // equals the corresponding STATS line.
    let stats: BTreeMap<String, f64> = c
        .expect_ok("STATS")
        .expect("stats")
        .lines
        .iter()
        .filter_map(|l| l.rsplit_once(' '))
        .map(|(name, v)| (name.to_owned(), v.parse().unwrap()))
        .collect();
    let exposition = c.metrics().expect("metrics");
    let samples = parse_exposition(&exposition).expect("exposition parses");
    let mut gauges = 0usize;
    for s in samples.iter().filter(|s| s.name == "sqlnf_store") {
        let name = s.label("name").expect("store gauge has a name label");
        if name == "requests" {
            // The scrapes are themselves requests, so this counter
            // advances between STATS and METRICS; only its direction
            // is stable.
            assert!(s.value > stats[name], "requests must keep counting");
        } else {
            assert_eq!(
                Some(&s.value),
                stats.get(name),
                "METRICS gauge {name} diverges from STATS"
            );
        }
        gauges += 1;
    }
    assert_eq!(gauges, stats.len(), "every STATS line is exposed");
    assert_eq!(stats["stmt.admitted"], admitted as f64);
    // TRACE is bounded and renders one event per line.
    let trace = c.trace(16).expect("trace");
    assert!(trace.len() <= 16, "TRACE 16 returned {}", trace.len());
    for line in &trace {
        assert!(
            line.split_whitespace().count() >= 6,
            "malformed flight line: {line}"
        );
    }
    c.quit().expect("quit");

    server.kill();
    let oplog = store.oplog();
    assert_eq!(oplog.len(), admitted, "oplog records every admission");

    if sqlnf_obs::ENABLED {
        // Flight events are process-global and tests run in parallel,
        // so count only events stamped with this store's nonce.
        let admitted_events = |events: &[sqlnf_obs::FlightEvent]| {
            events
                .iter()
                .filter(|e| e.name == "serve.stmt.admitted" && e.value == nonce)
                .count()
        };
        let before = sqlnf_obs::flight_snapshot(usize::MAX);
        assert_eq!(admitted_events(&before), oplog.len());

        // Recovery replays the WAL without re-admitting: no new events.
        let reopened = Store::open(&dir, 0).expect("recover");
        assert!(reopened.satisfies_all_constraints());
        let after = sqlnf_obs::flight_snapshot(usize::MAX);
        assert_eq!(
            admitted_events(&after),
            oplog.len(),
            "recovery must not emit admitted events"
        );
        drop(reopened);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Seed 5 with ride-alongs: a `WATCH` subscriber and a `MINE`-issuing
/// session run beside two DML clients. `run_one` cross-checks every
/// streamed FD/key event against a from-scratch mine of the oplog
/// prefix it claims, and — since nothing is killed and nothing lags —
/// requires the received stream to equal the full reference stream.
/// Seed 5 is odd, so the subscriber rides the **weak** plane
/// (`WATCH * weak`): the reference mines include `wfd:` facts and the
/// byte-equality check covers the fourth semantics end to end.
#[test]
fn seed_5_watch_stream_is_sound_and_complete() {
    let c = HarnessConfig {
        seed: 5,
        ops: 150,
        clients: 2,
        kill_prob: 0.0,
        corrupt_prob: 0.0,
        watch: true,
        ..HarnessConfig::default()
    };
    let report = run_one(&c).expect("watched differential run passes");
    assert!(!report.killed && !report.corrupted);
    assert!(report.watch_events > 0, "subscriber saw no events");
    assert_eq!(report.watch_lagged, 0, "subscriber must keep up");
    assert!(report.mines > 0, "MINE must interleave with the DML");
    assert_eq!(report.recovered, report.admitted);
    assert!(
        report.line().contains("watch ev"),
        "summary surfaces the stream"
    );
}

/// Seed 13: the weak plane under fire. An odd seed (so the ride-along
/// subscriber is on `WATCH * weak`) with the kill armed: the server
/// dies mid-run, and recovery must leave tables on which all four
/// semantics — weak included — mine deterministically and pass the
/// satisfaction/oracle cross-check (`run_one`'s minecheck quantifies
/// over `Semantics::ALL`). The weak stream received before the kill
/// must still be a sound, in-order subsequence of the reference.
#[test]
fn seed_13_weak_watch_survives_a_kill() {
    let c = HarnessConfig {
        seed: 13,
        ops: 150,
        clients: 2,
        kill_prob: 1.0,
        corrupt_prob: 0.0,
        watch: true,
        ..HarnessConfig::default()
    };
    let p = plan(c.seed, c.ops, c.kill_prob, c.corrupt_prob);
    assert!(p.kill_after.is_some(), "seed must arm the kill");
    let report = run_one(&c).expect("weak-watched faulted run passes");
    assert!(report.killed && !report.corrupted);
    // No corruption: every flushed append survives, and the recovered
    // tables feed the four-semantics minecheck.
    assert_eq!(report.recovered, report.admitted);
    assert!(report.minecheck.tables > 0);
    assert!(report.minecheck.fds_checked > 0);
}

/// Seed 7: a DDL-heavy stream — CREATE TABLEs keep arriving mid-run
/// while four clients insert concurrently — shut down gracefully; the
/// recovered store must equal the full serial replay.
#[test]
fn seed_7_concurrent_ddl() {
    let c = config(7, 0.0, 0.0);
    let report = run_one(&c).expect("differential run passes");
    assert!(!report.killed && !report.corrupted);
    assert!(
        report.mid_stream_ddl >= 3,
        "seed must issue DDL mid-stream, got {}",
        report.mid_stream_ddl
    );
    assert!(report.tables >= 4);
    assert_eq!(report.recovered, report.admitted);
    assert!(report.minecheck.tables >= 4);
    assert!(report.minecheck.oracle_queries > 0);
}
