//! Amortized-cost evidence for the incremental miner, isolated in its
//! own test binary because it asserts on process-wide obs counters.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlnf::discovery::cache::DEFAULT_CACHE_BUDGET;
use sqlnf::discovery::classify::mine_report;
use sqlnf::discovery::incremental::IncrementalMiner;
use sqlnf::prelude::*;

const COLS: usize = 6;
const MAX_LHS: usize = 3;

fn random_tuple(rng: &mut StdRng) -> Tuple {
    Tuple::new(
        (0..COLS)
            .map(|c| {
                if rng.gen_bool(0.15) {
                    Value::Null
                } else {
                    Value::Int(rng.gen_range(0..3 + c as i64))
                }
            })
            .collect::<Vec<_>>(),
    )
}

#[test]
fn amortized_cost_beats_scratch_on_small_deltas() {
    // The acceptance claim in miniature: after a 1-row delta the
    // incremental mine touches far fewer candidates than a full run.
    sqlnf_obs::reset();
    let mut rng = StdRng::seed_from_u64(23);
    let schema = TableSchema::new(
        "t",
        (0..COLS).map(|i| format!("c{i}")).collect::<Vec<_>>(),
        &[],
    );
    let mut table = Table::new(schema);
    for _ in 0..200 {
        table.push(random_tuple(&mut rng));
    }
    let mut m = IncrementalMiner::from_table(&table);
    let _ = m.report("t", MAX_LHS, DEFAULT_CACHE_BUDGET); // warm the frontier

    sqlnf_obs::reset();
    let _ = m.report("t", MAX_LHS, DEFAULT_CACHE_BUDGET);
    let warm = sqlnf_obs::report()
        .counter("discovery.partition.rows_scanned")
        .unwrap_or(0);

    sqlnf_obs::reset();
    let _ = mine_report("t", &m.table(), MAX_LHS, DEFAULT_CACHE_BUDGET);
    let scratch = sqlnf_obs::report()
        .counter("discovery.partition.rows_scanned")
        .unwrap_or(0);

    assert!(
        warm * 10 <= scratch.max(1),
        "warm incremental mine scanned {warm} rows vs {scratch} from scratch"
    );
}
