//! Differential property for the incremental discovery engine: after
//! every batch of random DML (inserts, updates, deletes), the
//! incremental `MINE` output — FDs under all four semantics, keys,
//! and the rendered report — byte-equals a from-scratch mine of the
//! same rows, with the from-scratch side run at 1 and 4 threads (the
//! PR 5 determinism contract makes those identical to each other, so
//! the incremental replay must match both). On top of the per-semantics
//! equality, every batch checks the cross-semantics lattice: each
//! certain-mined FD has a weak-mined cover on a sub-LHS.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlnf::discovery::cache::DEFAULT_CACHE_BUDGET;
use sqlnf::discovery::check::Semantics;
use sqlnf::discovery::classify::mine_report;
use sqlnf::discovery::incremental::IncrementalMiner;
use sqlnf::discovery::keys::mine_keys_budgeted;
use sqlnf::discovery::mine::{mine_fds, MinerConfig};
use sqlnf::prelude::*;

const COLS: usize = 6;
const MAX_LHS: usize = 3;

fn random_tuple(rng: &mut StdRng) -> Tuple {
    Tuple::new(
        (0..COLS)
            .map(|c| {
                if rng.gen_bool(0.15) {
                    Value::Null
                } else {
                    Value::Int(rng.gen_range(0..3 + c as i64))
                }
            })
            .collect::<Vec<_>>(),
    )
}

fn assert_incremental_matches(m: &mut IncrementalMiner, ctx: &str) {
    let table = m.table();
    let mut by_sem = Vec::with_capacity(Semantics::ALL.len());
    for sem in Semantics::ALL {
        let incr = m.mine_fds(sem, MAX_LHS, DEFAULT_CACHE_BUDGET);
        for threads in [1, 4] {
            let scratch = mine_fds(
                &table,
                MinerConfig::new(sem)
                    .with_max_lhs(MAX_LHS)
                    .with_threads(threads),
            );
            assert_eq!(scratch.fds, incr, "{ctx}: {sem:?} threads={threads}");
        }
        by_sem.push(incr);
    }
    // Lattice: certain ⊆ weak as implied sets — minimal LHSs may only
    // shrink under the laxer semantics.
    let (certain, weak) = (&by_sem[2], &by_sem[3]);
    for fd in certain {
        for a in fd.rhs {
            assert!(
                weak.iter()
                    .any(|w| w.lhs.is_subset(fd.lhs) && w.rhs.contains(a)),
                "{ctx}: certain-mined {:?} -> {a:?} has no weak cover",
                fd.lhs
            );
        }
    }
    assert_eq!(
        mine_keys_budgeted(&table, MAX_LHS, DEFAULT_CACHE_BUDGET),
        m.mine_keys(MAX_LHS, DEFAULT_CACHE_BUDGET),
        "{ctx}: keys"
    );
    assert_eq!(
        mine_report("t", &table, MAX_LHS, DEFAULT_CACHE_BUDGET),
        m.report("t", MAX_LHS, DEFAULT_CACHE_BUDGET),
        "{ctx}: report"
    );
}

fn run_dml_trace(seed: u64, batches: usize, ops_per_batch: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = TableSchema::new(
        "t",
        (0..COLS).map(|i| format!("c{i}")).collect::<Vec<_>>(),
        &[],
    );
    let mut table = Table::new(schema);
    for _ in 0..40 {
        table.push(random_tuple(&mut rng));
    }
    let mut m = IncrementalMiner::from_table(&table);
    let mut live: Vec<usize> = (0..table.len()).collect();
    assert_incremental_matches(&mut m, &format!("seed {seed} cold"));

    for batch in 0..batches {
        for _ in 0..ops_per_batch {
            match rng.gen_range(0..10) {
                0..=4 => {
                    live.push(m.insert(random_tuple(&mut rng)));
                }
                5..=7 if !live.is_empty() => {
                    let row = live[rng.gen_range(0..live.len())];
                    assert!(m.update(row, random_tuple(&mut rng)));
                }
                _ if !live.is_empty() => {
                    let i = rng.gen_range(0..live.len());
                    let row = live.swap_remove(i);
                    assert!(m.delete(row));
                }
                _ => {
                    live.push(m.insert(random_tuple(&mut rng)));
                }
            }
        }
        assert_incremental_matches(&mut m, &format!("seed {seed} batch {batch}"));
    }
}

#[test]
fn incremental_matches_scratch_after_every_batch() {
    for seed in [3, 17, 92] {
        run_dml_trace(seed, 6, 12);
    }
}

#[test]
fn reconcile_audits_never_diverge() {
    // Reconcile after every delta: the audit itself asserts
    // incremental == from-scratch inside `report`.
    let mut rng = StdRng::seed_from_u64(7);
    let schema = TableSchema::new(
        "t",
        (0..COLS).map(|i| format!("c{i}")).collect::<Vec<_>>(),
        &[],
    );
    let mut m = IncrementalMiner::new(schema).with_reconcile_every(1);
    let mut live = Vec::new();
    for step in 0..30 {
        if live.is_empty() || rng.gen_bool(0.6) {
            live.push(m.insert(random_tuple(&mut rng)));
        } else if rng.gen_bool(0.5) {
            let row = live[rng.gen_range(0..live.len())];
            m.update(row, random_tuple(&mut rng));
        } else {
            let i = rng.gen_range(0..live.len());
            m.delete(live.swap_remove(i));
        }
        let _ = m.report("t", MAX_LHS, DEFAULT_CACHE_BUDGET);
        assert_eq!(m.deltas_applied(), step + 1);
    }
}
