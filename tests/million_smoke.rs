//! Release-mode smoke test for the million-row regime the columnar
//! storage targets: mine the full `million_like` instance end-to-end
//! under both classical and certain semantics and check the planted
//! dependencies come back. Ignored by default — a debug build takes
//! minutes where release takes seconds — and run in CI as
//!
//! ```text
//! SQLNF_MINE_THREADS=4 cargo test -q --release --test million_smoke -- --ignored
//! ```

use std::time::Instant;

use sqlnf::discovery::check::Semantics;
use sqlnf::discovery::mine::{mine_fds, MinerConfig, MiningResult};
use sqlnf::prelude::*;

/// True iff the mined minimal cover contains `lhs → rhs` (as a subset
/// of one minimal FD's attribute-wise right-hand side).
fn contains_fd(result: &MiningResult, lhs: AttrSet, rhs: AttrSet) -> bool {
    result
        .fds
        .iter()
        .any(|f| f.lhs == lhs && rhs.is_subset(f.rhs))
}

#[test]
#[ignore = "million-row end-to-end mine; run in release builds only"]
fn million_rows_mine_end_to_end() {
    let t = sqlnf::datagen::naumann::million_like(20_160_626);
    assert_eq!((t.schema().arity(), t.len()), (8, 1_000_000));
    let s = t.schema().clone();
    let site_to_region = (s.set(&["site"]), s.set(&["region"]));
    let class_to_firmware = (s.set(&["device_class"]), s.set(&["firmware"]));

    for sem in [Semantics::Classical, Semantics::Certain] {
        let t0 = Instant::now();
        let result = mine_fds(&t, MinerConfig::new(sem).with_max_lhs(3));
        eprintln!(
            "million {:?}: {} minimal FDs in {:?} ({} candidates)",
            sem,
            result.fds.len(),
            t0.elapsed(),
            result.candidates_checked
        );
        // The planted dependencies are single-attribute, so they must
        // appear as minimal LHSs regardless of semantics (no LHS
        // attribute is ever null in the generator).
        assert!(
            contains_fd(&result, site_to_region.0, site_to_region.1),
            "{sem:?}: site → region not mined"
        );
        assert!(
            contains_fd(&result, class_to_firmware.0, class_to_firmware.1),
            "{sem:?}: device_class → firmware not mined"
        );
        // The free columns (reading, status, …) are independent draws:
        // at this row count no accidental FD can survive, so the cover
        // is exactly the planted structure.
        for f in &result.fds {
            assert!(
                f.lhs == site_to_region.0 || f.lhs == class_to_firmware.0,
                "{sem:?}: unexpected minimal FD {:?} → {:?}",
                f.lhs,
                f.rhs
            );
        }
    }
}
