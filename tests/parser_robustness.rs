//! Robustness of the text front-ends: the SQL and CSV parsers must
//! never panic, whatever bytes they are fed, and must be deterministic.

use proptest::prelude::*;
use sqlnf::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary strings never panic the SQL parser.
    #[test]
    fn sql_parser_never_panics(src in ".*") {
        let _ = parse_script(&src);
    }

    /// Arbitrary SQL-ish token soup never panics either (denser in
    /// tokens the grammar actually contains, to exercise deeper paths).
    #[test]
    fn sql_token_soup_never_panics(
        words in proptest::collection::vec(
            prop_oneof![
                Just("CREATE".to_owned()),
                Just("TABLE".to_owned()),
                Just("INSERT".to_owned()),
                Just("INTO".to_owned()),
                Just("VALUES".to_owned()),
                Just("CONSTRAINT".to_owned()),
                Just("CERTAIN".to_owned()),
                Just("POSSIBLE".to_owned()),
                Just("KEY".to_owned()),
                Just("FD".to_owned()),
                Just("NOT".to_owned()),
                Just("NULL".to_owned()),
                Just("INT".to_owned()),
                Just("TEXT".to_owned()),
                Just("(".to_owned()),
                Just(")".to_owned()),
                Just(",".to_owned()),
                Just(";".to_owned()),
                Just("->".to_owned()),
                Just("'x'".to_owned()),
                Just("42".to_owned()),
                Just("tbl".to_owned()),
                Just("col".to_owned()),
            ],
            0..40
        )
    ) {
        let src = words.join(" ");
        let _ = parse_script(&src);
    }

    /// The CSV parser never panics and is total on arbitrary input.
    #[test]
    fn csv_parser_never_panics(src in ".*") {
        let _ = table_from_csv("t", &src);
    }

    /// Parsing is deterministic.
    #[test]
    fn parsers_are_deterministic(src in ".*") {
        let a = parse_script(&src);
        let b = parse_script(&src);
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = table_from_csv("t", &src).is_ok();
        let d = table_from_csv("t", &src).is_ok();
        prop_assert_eq!(c, d);
    }

    /// Every successfully parsed script round-trips through the engine
    /// without panicking (constraint violations are fine — rejections
    /// are errors, not crashes).
    #[test]
    fn parsed_scripts_execute_without_panics(
        words in proptest::collection::vec(
            prop_oneof![
                Just("CREATE TABLE t (a INT, b TEXT)".to_owned()),
                Just("CREATE TABLE u (x INT NOT NULL, CONSTRAINT k CERTAIN KEY (x))".to_owned()),
                Just("INSERT INTO t VALUES (1, 'y')".to_owned()),
                Just("INSERT INTO t VALUES (NULL, NULL)".to_owned()),
                Just("INSERT INTO u VALUES (1)".to_owned()),
                Just("INSERT INTO u VALUES (1)".to_owned()),
                Just("INSERT INTO missing VALUES (1)".to_owned()),
            ],
            0..8
        )
    ) {
        let src = words.join(";\n");
        let mut db = Database::new();
        let _ = db.run_script(&src);
        // Whatever happened, every stored table still satisfies its
        // declared constraints.
        for name in db.table_names() {
            let st = db.table(name).unwrap();
            prop_assert!(satisfies_all(st.data(), st.sigma()));
        }
    }
}
