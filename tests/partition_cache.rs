//! Evidence for the level-cached partition products: building every
//! lattice partition up to level 4 through a [`PartitionCtx`] must
//! scan at least 3× fewer rows than building each one fresh with
//! [`Partition::by_set`].
//!
//! Kept as its own integration binary: it reads the process-global
//! counter registry, which must not race with other tests.

use sqlnf_discovery::prelude::*;
use sqlnf_model::attrs::AttrSet;

/// All subsets of the first `n` attributes with `1 ≤ |X| ≤ max_len`,
/// in level order (so the cached sweep always finds its prefix).
fn level_ordered_subsets(n: usize, max_len: usize) -> Vec<AttrSet> {
    let mut subsets: Vec<AttrSet> = AttrSet::first_n(n)
        .subsets()
        .filter(|x| (1..=max_len).contains(&x.len()))
        .collect();
    subsets.sort_by_key(|x| (x.len(), x.0));
    subsets
}

#[test]
fn cached_products_scan_at_least_3x_fewer_rows() {
    if !sqlnf_obs::ENABLED {
        return; // counters compiled out: nothing to measure
    }
    let table = sqlnf_datagen::naumann::breast_cancer_like(20_160_626);
    let enc = Encoded::new(&table);
    let subsets = level_ordered_subsets(table.schema().arity(), 4);

    // Fresh build: every candidate grouped from the rows, TANE-free.
    sqlnf_obs::reset();
    for &x in &subsets {
        std::hint::black_box(Partition::by_set(&enc, x, NullSemantics::Strong));
    }
    let fresh = sqlnf_obs::report()
        .counter("discovery.partition.rows_scanned")
        .unwrap_or(0);

    // Cached build: one product with a memoized prefix per candidate.
    sqlnf_obs::reset();
    let mut ctx = PartitionCtx::new(&enc, NullSemantics::Strong);
    for &x in &subsets {
        std::hint::black_box(ctx.partition(x));
    }
    let report = sqlnf_obs::report();
    let cached = report
        .counter("discovery.partition.rows_scanned")
        .unwrap_or(0);

    assert!(fresh > 0 && cached > 0, "fresh={fresh} cached={cached}");
    assert!(
        fresh >= 3 * cached,
        "expected ≥3× fewer rows scanned through the cache: \
         fresh={fresh} cached={cached}"
    );
    // Each multi-attribute subset is built exactly once (one miss, no
    // rebuild), and every size-≥3 build finds its prefix in the memo.
    let hits = report
        .counter("discovery.partition.cache.hits")
        .unwrap_or(0);
    let misses = report
        .counter("discovery.partition.cache.misses")
        .unwrap_or(0);
    let multi = subsets.iter().filter(|x| x.len() >= 2).count() as u64;
    let deep = subsets.iter().filter(|x| x.len() >= 3).count() as u64;
    assert_eq!(misses, multi, "hits={hits}");
    assert_eq!(hits, deep, "misses={misses}");
}
