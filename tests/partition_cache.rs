//! Evidence for the discovery caches: the level-cached partition
//! products (a [`PartitionCtx`] sweep must scan at least 3× fewer rows
//! than fresh [`Partition::by_set`] builds) and the miner's
//! footprint-keyed probe cache (certain-semantics mining must reuse
//! probe indexes instead of rebuilding per candidate).
//!
//! Kept as its own integration binary: the tests read the
//! process-global counter registry, so they serialize on a local lock
//! and must not race with other test binaries. CI runs this binary
//! once more with `SQLNF_MINE_THREADS=4` (picked up by
//! `MinerConfig::new`), exercising the parallel work queue under the
//! same assertions.

use sqlnf_discovery::prelude::*;
use sqlnf_model::attrs::AttrSet;
use std::sync::{Mutex, MutexGuard};

/// Serializes counter-reading tests within this binary (an assert
/// failure poisons the lock; later tests still want to run).
static COUNTERS: Mutex<()> = Mutex::new(());

fn counters_lock() -> MutexGuard<'static, ()> {
    COUNTERS.lock().unwrap_or_else(|e| e.into_inner())
}

/// All subsets of the first `n` attributes with `1 ≤ |X| ≤ max_len`,
/// in level order (so the cached sweep always finds its prefix).
fn level_ordered_subsets(n: usize, max_len: usize) -> Vec<AttrSet> {
    let mut subsets: Vec<AttrSet> = AttrSet::first_n(n)
        .subsets()
        .filter(|x| (1..=max_len).contains(&x.len()))
        .collect();
    subsets.sort_by_key(|x| (x.len(), x.0));
    subsets
}

#[test]
fn cached_products_scan_at_least_3x_fewer_rows() {
    if !sqlnf_obs::ENABLED {
        return; // counters compiled out: nothing to measure
    }
    let _guard = counters_lock();
    let table = sqlnf_datagen::naumann::breast_cancer_like(20_160_626);
    let enc = Encoded::new(&table);
    let subsets = level_ordered_subsets(table.schema().arity(), 4);

    // Fresh build: every candidate grouped from the rows, TANE-free.
    sqlnf_obs::reset();
    for &x in &subsets {
        std::hint::black_box(Partition::by_set(&enc, x, NullSemantics::Strong));
    }
    let fresh = sqlnf_obs::report()
        .counter("discovery.partition.rows_scanned")
        .unwrap_or(0);

    // Cached build: one product with a memoized prefix per candidate.
    sqlnf_obs::reset();
    let mut ctx = PartitionCtx::new(&enc, NullSemantics::Strong);
    for &x in &subsets {
        std::hint::black_box(ctx.partition(x));
    }
    let report = sqlnf_obs::report();
    let cached = report
        .counter("discovery.partition.rows_scanned")
        .unwrap_or(0);

    assert!(fresh > 0 && cached > 0, "fresh={fresh} cached={cached}");
    assert!(
        fresh >= 3 * cached,
        "expected ≥3× fewer rows scanned through the cache: \
         fresh={fresh} cached={cached}"
    );
    // Each multi-attribute subset is built exactly once (one miss, no
    // rebuild), and every size-≥3 build finds its prefix in the memo.
    let hits = report
        .counter("discovery.partition.cache.hits")
        .unwrap_or(0);
    let misses = report
        .counter("discovery.partition.cache.misses")
        .unwrap_or(0);
    let multi = subsets.iter().filter(|x| x.len() >= 2).count() as u64;
    let deep = subsets.iter().filter(|x| x.len() >= 3).count() as u64;
    assert_eq!(misses, multi, "hits={hits}");
    assert_eq!(hits, deep, "misses={misses}");
}

/// Certain-semantics mining on the wide-short hepatitis workload: the
/// miner's prev-level lookups report under their own counter names
/// (not the `PartitionCtx` ones — the old conflation), and the
/// footprint-keyed probe cache keeps index builds far below one per
/// probed candidate (the seed code built 1350 per run) while showing
/// actual reuse.
#[test]
fn miner_probe_cache_reuses_and_counters_are_separated() {
    if !sqlnf_obs::ENABLED {
        return;
    }
    let _guard = counters_lock();
    let table = sqlnf_datagen::naumann::hepatitis_like(20_160_626);
    sqlnf_obs::reset();
    // `MinerConfig::new` honours SQLNF_MINE_THREADS, so the CI step
    // that sets it drives this exact run through the parallel queue.
    let res = sqlnf_discovery::mine::mine_fds(
        &table,
        MinerConfig::new(Semantics::Certain).with_max_lhs(4),
    );
    assert!(res.fd_count_attrwise() > 0);
    let report = sqlnf_obs::report();

    // The miner never touches a PartitionCtx: its prev-level lookup
    // traffic must land on `discovery.mine.prev_level.*` and leave the
    // budgeted-cache names untouched.
    assert_eq!(
        report
            .counter("discovery.partition.cache.hits")
            .unwrap_or(0),
        0
    );
    assert_eq!(
        report
            .counter("discovery.partition.cache.misses")
            .unwrap_or(0),
        0
    );
    assert!(
        report
            .counter("discovery.mine.prev_level.hits")
            .unwrap_or(0)
            > 0
    );

    let builds = report
        .counter("discovery.check.probe_index_builds")
        .unwrap_or(0);
    let hits = report
        .counter("discovery.check.probe_index.hits")
        .unwrap_or(0);
    let direct = report
        .counter("discovery.check.probe_index.direct")
        .unwrap_or(0);
    // The admit-after-5 policy bounds builds to a fifth of the probes
    // (~1350 on this workload); the seed code built once per probe.
    assert!(builds <= 270, "builds={builds} hits={hits} direct={direct}");
    assert!(hits >= 1, "builds={builds} hits={hits} direct={direct}");
    assert!(
        direct >= 1,
        "small-footprint probes should scan directly: builds={builds} direct={direct}"
    );
}
