//! Deeper (4-attribute) randomized validation of the reasoning stack —
//! complements the exhaustive 3-attribute suites in the unit tests.
//! The oracle enumerates 4⁴ = 256 patterns per query here, so the
//! budget stays modest while covering a strictly larger lattice.

mod common;

use common::*;
use proptest::prelude::*;
use sqlnf::prelude::*;

const COLS: usize = 4;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorems 2/4/5 at 4 attributes: decision procedures vs oracle on
    /// randomly sampled queries (full query sweep would be 4⁴·2·17
    /// checks per Σ; we sample LHS/RHS instead).
    #[test]
    fn implication_matches_oracle_4attrs(
        sigma in sigma(COLS, 6),
        nfs in attr_subset(COLS),
        x in attr_subset(COLS),
        y in attr_subset(COLS),
    ) {
        let t = AttrSet::first_n(COLS);
        let r = Reasoner::new(t, nfs, &sigma);
        for m in [Modality::Possible, Modality::Certain] {
            let fd = Constraint::Fd(Fd { lhs: x, rhs: y, modality: m });
            prop_assert_eq!(r.implies(&fd), oracle_implies(t, nfs, &sigma, &fd), "{}", fd);
            let key = Constraint::Key(Key { attrs: x, modality: m });
            prop_assert_eq!(r.implies(&key), oracle_implies(t, nfs, &sigma, &key), "{}", key);
        }
    }

    /// FD-projection is sound and complete for FD queries
    /// (Definition 3): Σ ⊨ φ iff Σ|FD ⊨ φ for FDs φ.
    #[test]
    fn fd_projection_reduction(
        sigma in sigma(COLS, 5),
        nfs in attr_subset(COLS),
        x in attr_subset(COLS),
        y in attr_subset(COLS),
    ) {
        let t = AttrSet::first_n(COLS);
        let keyless = Sigma {
            fds: sigma.fd_projection(t),
            keys: vec![],
        };
        let r_full = Reasoner::new(t, nfs, &sigma);
        let r_proj = Reasoner::new(t, nfs, &keyless);
        for m in [Modality::Possible, Modality::Certain] {
            let fd = Fd { lhs: x, rhs: y, modality: m };
            prop_assert_eq!(r_full.implies_fd(&fd), r_proj.implies_fd(&fd));
        }
    }

    /// Satisfaction is monotone under sub-multisets: removing rows never
    /// breaks an FD or key (the ∀-pair structure everything rests on).
    #[test]
    fn satisfaction_is_antimonotone_in_rows(
        table in small_table(COLS, 6),
        x in attr_subset(COLS),
        y in attr_subset(COLS),
        drop in 0usize..6,
    ) {
        prop_assume!(!table.is_empty());
        let drop = drop % table.len();
        let mut rows = table.rows().to_vec();
        rows.remove(drop);
        let sub = Table::from_rows(table.schema().clone(), rows);
        for m in [Modality::Possible, Modality::Certain] {
            let fd = Fd { lhs: x, rhs: y, modality: m };
            if satisfies_fd(&table, &fd) {
                prop_assert!(satisfies_fd(&sub, &fd));
            }
            let key = Key { attrs: x, modality: m };
            if satisfies_key(&table, &key) {
                prop_assert!(satisfies_key(&sub, &key));
            }
        }
    }

    /// Satisfied constraints are implied-closed on instances: if I
    /// satisfies Σ and Σ ⊨ φ then I satisfies φ (soundness of the whole
    /// implication machinery against real instances).
    #[test]
    fn implication_sound_on_instances(
        table in small_table(COLS, 6),
        sigma in sigma(COLS, 4),
        nfs in attr_subset(COLS),
        x in attr_subset(COLS),
        y in attr_subset(COLS),
    ) {
        // Re-type the table over (T, T_S).
        let names: Vec<String> = (0..COLS).map(|i| format!("a{i}")).collect();
        let nn: Vec<String> = nfs.iter().map(|a| format!("a{}", a.index())).collect();
        let nn_refs: Vec<&str> = nn.iter().map(String::as_str).collect();
        let schema = TableSchema::new("t", names, &nn_refs);
        let retyped = Table::from_rows(schema, table.rows().to_vec());
        prop_assume!(retyped.satisfies_nfs());
        prop_assume!(satisfies_all(&retyped, &sigma));
        let r = Reasoner::new(AttrSet::first_n(COLS), nfs, &sigma);
        for m in [Modality::Possible, Modality::Certain] {
            let fd = Fd { lhs: x, rhs: y, modality: m };
            if r.implies_fd(&fd) {
                prop_assert!(satisfies_fd(&retyped, &fd), "{} on\n{}", fd, retyped);
            }
            let key = Key { attrs: x, modality: m };
            if r.implies_key(&key) {
                prop_assert!(satisfies_key(&retyped, &key), "{} on\n{}", key, retyped);
            }
        }
    }

    /// Cover minimization preserves equivalence at 4 attributes.
    #[test]
    fn minimize_cover_is_equivalent(
        sigma in sigma(COLS, 6),
        nfs in attr_subset(COLS),
    ) {
        let t = AttrSet::first_n(COLS);
        let min = minimize_cover(t, nfs, &sigma);
        prop_assert!(equivalent(t, nfs, &sigma, &min));
        prop_assert!(min.len() <= sigma.len());
    }

    /// Totalization: the converted Σ implies the original.
    #[test]
    fn totalize_strengthens_only(
        sigma in sigma(COLS, 4),
        nfs in attr_subset(COLS),
    ) {
        let t = AttrSet::first_n(COLS);
        if let Ok(tot) = totalize(&sigma, nfs) {
            prop_assert!(tot.sigma.is_total_fds_and_ckeys());
            let r = Reasoner::new(t, nfs, &tot.sigma);
            prop_assert!(r.implies_all(&sigma), "totalized Σ must imply the original");
            // And it is decomposable.
            prop_assert!(vrnf_decompose(t, nfs, &tot.sigma).is_ok());
        }
    }
}
