//! End-to-end tests of the `sqlnf-serve` subsystem: many concurrent
//! wire-protocol sessions hammering one constraint-guarded table, full
//! `satisfy` revalidation of the final state, crash recovery from the
//! WAL alone, and a property test that replay reproduces the store
//! byte-for-byte. The big test doubles as a throughput measurement and
//! writes a `BENCH_serve.json` annotated with the `serve.*` counters.

mod common;

use common::*;
use proptest::prelude::*;
use sqlnf::prelude::*;
use sqlnf_serve::{Client, ServeConfig, Server, Store};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A fresh per-test scratch directory (no clock or RNG involved so the
/// proptest shim stays deterministic).
fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("sqlnf_serve_it_{tag}_{}_{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const DDL: &str = "CREATE TABLE load (
    id  INT NOT NULL,
    grp INT NOT NULL,
    val INT NOT NULL,
    CONSTRAINT pk CERTAIN KEY (id),
    CONSTRAINT fd CERTAIN FD (grp) -> (val)
);";

const CLIENTS: usize = 8;
const STMTS: usize = 1_000;

/// ≥ 8 concurrent clients × ≥ 1 000 statements each, interleaving
/// admissible inserts with deliberate key violations. Invariants:
/// every violation is refused, every valid insert is admitted, the
/// final instance passes full constraint revalidation, and killing the
/// server (no snapshot, no fsync) loses nothing — recovery from the
/// WAL reproduces the exact store contents.
#[test]
fn concurrent_sessions_never_admit_a_violation() {
    let dir = scratch_dir("load");
    let mut exported = String::new();
    let mut record = sqlnf_bench::measure("serve_it_8x1000_wal", 1, || {
        let server = Server::start(ServeConfig {
            workers: CLIENTS,
            wal_dir: Some(dir.clone()),
            ..ServeConfig::default()
        })
        .expect("bind");
        let addr = server.local_addr();
        {
            let mut c = Client::connect(addr).expect("connect");
            c.expect_ok(DDL).expect("ddl admitted");
            c.quit().expect("quit");
        }
        let handles: Vec<_> = (0..CLIENTS)
            .map(|k| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).expect("connect");
                    let mut admitted = 0usize;
                    let mut rejected = 0usize;
                    for i in 0..STMTS {
                        // Every 5th statement replays this client's own
                        // first id: a guaranteed CERTAIN KEY violation
                        // (grp/val stay consistent with the FD, so the
                        // key alone is what refuses it).
                        let violation = i % 5 == 4;
                        let id = if violation {
                            (k * STMTS) as i64
                        } else {
                            (k * STMTS + i) as i64
                        };
                        let g = id / 4;
                        let stmt = format!("INSERT INTO load VALUES ({id}, {g}, {});", g * 7 % 101);
                        let reply = c.request(&stmt).expect("reply");
                        assert_eq!(
                            reply.ok, !violation,
                            "client {k} statement {i}: {}",
                            reply.message
                        );
                        if reply.ok {
                            admitted += 1;
                        } else {
                            rejected += 1;
                        }
                    }
                    c.quit().expect("quit");
                    (admitted, rejected)
                })
            })
            .collect();
        let mut admitted = 0usize;
        let mut rejected = 0usize;
        for h in handles {
            let (a, r) = h.join().expect("client thread");
            admitted += a;
            rejected += r;
        }
        assert_eq!(admitted, CLIENTS * STMTS * 4 / 5);
        assert_eq!(rejected, CLIENTS * STMTS / 5);

        let store = server.store();
        // Full revalidation: every declared constraint holds on the
        // final instance (not just "the engine said so row by row").
        assert!(store.satisfies_all_constraints());
        let rows = store
            .with_table("load", |t| t.data().len())
            .expect("table exists");
        assert_eq!(rows, admitted);
        let stats = &store.stats;
        assert_eq!(stats.admitted.load(Ordering::Relaxed), admitted as u64 + 1);
        assert_eq!(stats.rejected.load(Ordering::Relaxed), rejected as u64);
        assert_eq!(stats.sessions.load(Ordering::Relaxed), CLIENTS as u64 + 1);
        exported = store.export_script();

        // Simulated crash: no final snapshot, no fsync.
        server.kill();
    });

    // Recovery must come from the WAL alone and reproduce the store.
    let reopened = Store::open(&dir, 0).expect("recover");
    assert_eq!(reopened.export_script(), exported);
    assert!(reopened.satisfies_all_constraints());
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);

    // The run doubles as the serve throughput record: BENCH_serve.json
    // with sustained stmts/sec and the serve.* observability counters.
    let total = (CLIENTS * STMTS + 1) as f64;
    let per_sec = total / record.median.as_secs_f64();
    record.extra.push((
        "stmts_per_sec".to_owned(),
        sqlnf_obs::json::JsonValue::Float(per_sec),
    ));
    let out = scratch_dir("bench");
    let path = sqlnf_bench::write_bench_json_in(&out, "serve", &[record]).expect("write json");
    assert!(path.ends_with("BENCH_serve.json"));
    let text = std::fs::read_to_string(&path).expect("read json");
    let doc = sqlnf_obs::json::parse(&text).expect("valid JSON");
    let entry = &doc.get("entries").and_then(|v| v.as_array()).unwrap()[0];
    assert!(entry.get("stmts_per_sec").is_some());
    if sqlnf_obs::ENABLED {
        let counter = |name: &str| {
            entry
                .get("counters")
                .and_then(|c| c.get(name))
                .and_then(|v| v.as_u64())
                .unwrap_or_else(|| panic!("counter {name} missing from {text}"))
        };
        assert_eq!(counter("serve.sessions"), CLIENTS as u64 + 1);
        assert_eq!(
            counter("serve.stmt.admitted"),
            (CLIENTS * STMTS * 4 / 5) as u64 + 1
        );
        assert_eq!(counter("serve.stmt.rejected"), (CLIENTS * STMTS / 5) as u64);
        assert!(counter("serve.wal.bytes") > 0);
    }
    let _ = std::fs::remove_dir_all(&out);
}

/// The observability verbs answer over the wire: `METRICS` renders a
/// parseable exposition whose per-store gauges match this server's
/// `STATS` and whose per-verb histograms have seen at least this
/// session's statements (the histograms are process-global, so `>=`
/// is the strongest in-process claim — the CI smoke checks exact
/// equality against a fresh server process); `TRACE n` is bounded.
#[test]
fn metrics_and_trace_over_the_wire() {
    let server = Server::start(ServeConfig::default()).expect("bind");
    let mut c = Client::connect(server.local_addr()).expect("connect");
    c.expect_ok(DDL).expect("ddl");
    for id in 0..10i64 {
        let g = id / 4;
        c.expect_ok(&format!(
            "INSERT INTO load VALUES ({id}, {g}, {});",
            g * 7 % 101
        ))
        .expect("insert");
    }
    let stats: std::collections::BTreeMap<String, f64> = c
        .expect_ok("STATS")
        .expect("stats")
        .lines
        .iter()
        .filter_map(|l| l.rsplit_once(' '))
        .map(|(name, v)| (name.to_owned(), v.parse().unwrap()))
        .collect();
    let text = c.metrics().expect("metrics");
    let samples = sqlnf_serve::parse_exposition(&text).expect("exposition parses");
    let gauge = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == "sqlnf_store" && s.label("name") == Some(name))
            .unwrap_or_else(|| panic!("missing sqlnf_store gauge {name}"))
            .value
    };
    assert_eq!(gauge("stmt.admitted"), stats["stmt.admitted"]);
    assert_eq!(gauge("stmt.admitted"), 11.0);
    assert_eq!(gauge("tables"), 1.0);
    if sqlnf_obs::ENABLED {
        // Per-verb latency histograms: this session alone contributed
        // eleven SQL statements and one STATS.
        let span_count = |name: &str| {
            samples
                .iter()
                .find(|s| s.name == "sqlnf_span_count" && s.label("name") == Some(name))
                .map(|s| s.value)
                .unwrap_or(0.0)
        };
        assert!(span_count("serve.verb.sql") >= 11.0);
        assert!(span_count("serve.verb.stats") >= 1.0);
        // The slow-request log carries at least one total breakdown.
        assert!(samples
            .iter()
            .any(|s| s.name == "sqlnf_slow_request_ns" && s.label("stage") == Some("total")));
        let trace = c.trace(8).expect("trace");
        assert!(trace.len() <= 8 && !trace.is_empty(), "{trace:?}");
    }
    c.quit().expect("quit");
    server.shutdown().expect("graceful shutdown");
}

/// Graceful shutdown writes a snapshot; a restart from snapshot + WAL
/// equals a restart from WAL alone (tested against the kill path above;
/// here the snapshot path).
#[test]
fn graceful_shutdown_then_restart_reproduces_store() {
    let dir = scratch_dir("graceful");
    let server = Server::start(ServeConfig {
        workers: 2,
        wal_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .expect("bind");
    let mut c = Client::connect(server.local_addr()).expect("connect");
    c.expect_ok(DDL).expect("ddl");
    for id in 0..40i64 {
        let g = id / 4;
        c.expect_ok(&format!(
            "INSERT INTO load VALUES ({id}, {g}, {});",
            g * 7 % 101
        ))
        .expect("insert");
    }
    c.quit().expect("quit");
    let exported = server.store().export_script();
    server.shutdown().expect("graceful shutdown");

    // After a graceful shutdown the WAL is truncated into the snapshot.
    let reopened = Store::open(&dir, 0).expect("reopen");
    assert_eq!(reopened.export_script(), exported);
    assert_eq!(reopened.wal_size().1, 0, "snapshot should absorb the WAL");
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// WAL replay-equivalence: any sequence of admitted statements
    /// (random constraints, random rows, rejections interleaved, an
    /// optional mid-stream snapshot) recovers to the byte-identical
    /// export after reopen.
    #[test]
    fn wal_replay_reproduces_store(
        sigma in sigma(3, 3),
        rows in proptest::collection::vec(
            proptest::collection::vec(small_value(), 3), 0..16),
        snap_mid in (0usize..2).prop_map(|b| b == 1),
    ) {
        let dir = scratch_dir("replay");
        let exported = {
            let store = Store::open(&dir, 0).unwrap();
            let names: Vec<String> = (0..3).map(|i| format!("a{i}")).collect();
            let schema = TableSchema::new("t", names, &[]);
            store
                .execute_sql(&render_create_table(&schema, &sigma))
                .unwrap();
            let half = rows.len() / 2;
            for (i, row) in rows.iter().enumerate() {
                // Rejected inserts are not logged; admitted ones are.
                let _ = store.execute_sql(&render_insert("t", &[Tuple::new(row.clone())]));
                if snap_mid && i == half {
                    store.snapshot().unwrap();
                }
            }
            prop_assert!(store.satisfies_all_constraints());
            store.export_script()
        };
        let reopened = Store::open(&dir, 0).unwrap();
        prop_assert_eq!(reopened.export_script(), exported);
        prop_assert!(reopened.satisfies_all_constraints());
        drop(reopened);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
