//! Round-trip properties of the serialization layers: SQL DDL render →
//! parse, CSV write → read, and profile consistency — over random
//! schemata, constraint sets and tables.

mod common;

use common::*;
use proptest::prelude::*;
use sqlnf::model::stats::profile;
use sqlnf::prelude::*;

const COLS: usize = 4;

fn named_schema(nfs: AttrSet) -> TableSchema {
    let names: Vec<String> = (0..COLS).map(|i| format!("col_{i}")).collect();
    let nn: Vec<String> = nfs.iter().map(|a| format!("col_{}", a.index())).collect();
    let nn_refs: Vec<&str> = nn.iter().map(String::as_str).collect();
    TableSchema::new("round_trip", names, &nn_refs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// DDL round-trip: render_create_table ∘ parse = identity on
    /// (columns, NFS, Σ).
    #[test]
    fn ddl_round_trip(sigma in sigma(COLS, 5), nfs in attr_subset(COLS)) {
        let schema = named_schema(nfs);
        let ddl = render_create_table(&schema, &sigma);
        let stmt = parse_statement(&ddl).unwrap_or_else(|e| panic!("{e}\n{ddl}"));
        let Statement::CreateTable { schema: s2, sigma: g2 } = stmt else {
            panic!("expected CREATE TABLE");
        };
        prop_assert_eq!(schema.column_names(), s2.column_names());
        prop_assert_eq!(schema.nfs(), s2.nfs());
        prop_assert_eq!(&sigma, &g2);
    }

    /// CSV round-trip up to value *rendering*: a loaded table has the
    /// same shape, null pattern and (string-rendered) cells.
    #[test]
    fn csv_round_trip(table in small_table(COLS, 8)) {
        let csv = table_to_csv(&table);
        let loaded = table_from_csv("t", &csv).unwrap();
        prop_assert_eq!(loaded.len(), table.len());
        prop_assert_eq!(loaded.schema().arity(), table.schema().arity());
        for (a, b) in table.rows().iter().zip(loaded.rows()) {
            for i in 0..COLS {
                let attr = Attr::from(i);
                prop_assert_eq!(a.get(attr).is_null(), b.get(attr).is_null());
                prop_assert_eq!(a.get(attr).to_string(), b.get(attr).to_string());
            }
        }
        // Constraint satisfaction is invariant under the round trip
        // (values compare only by equality, which rendering preserves
        // on this domain).
        let all = AttrSet::first_n(COLS);
        for x in all.subsets() {
            prop_assert_eq!(
                satisfies_key(&table, &Key::certain(x)),
                satisfies_key(&loaded, &Key::certain(x))
            );
        }
    }

    /// Profiles are consistent with direct queries.
    #[test]
    fn profile_consistency(table in small_table(COLS, 8)) {
        let p = profile(&table);
        prop_assert_eq!(p.rows, table.len());
        prop_assert_eq!(p.columns, COLS);
        prop_assert_eq!(p.distinct_rows, table.distinct_count());
        prop_assert_eq!(p.rows - p.duplicate_rows, p.distinct_rows);
        let nulls: usize = (0..COLS).map(|i| table.null_count(Attr::from(i))).collect::<Vec<_>>().iter().sum();
        prop_assert_eq!(p.total_nulls, nulls);
        for (i, c) in p.column_profiles.iter().enumerate() {
            prop_assert_eq!(c.nulls, table.null_count(Attr::from(i)));
            prop_assert_eq!(c.distinct, table.active_domain(Attr::from(i)).len());
        }
    }

    /// An engine loaded through generated DDL+INSERT equals the direct
    /// table, when the data satisfies the constraints.
    #[test]
    fn script_load_matches_direct(table in small_table(COLS, 6), sigma in sigma(COLS, 2)) {
        let schema = named_schema(AttrSet::EMPTY);
        let retyped = Table::from_rows(schema.clone(), table.rows().to_vec());
        prop_assume!(satisfies_all(&retyped, &sigma));
        let mut script = render_create_table(&schema, &sigma);
        if !retyped.is_empty() {
            script.push_str("\nINSERT INTO round_trip VALUES ");
            let rows: Vec<String> = retyped
                .rows()
                .iter()
                .map(|t| {
                    let vals: Vec<String> = t
                        .values()
                        .iter()
                        .map(|v| match v {
                            Value::Null => "NULL".to_owned(),
                            Value::Int(i) => i.to_string(),
                            Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
                            Value::Bool(b) => b.to_string().to_uppercase(),
                        })
                        .collect();
                    format!("({})", vals.join(", "))
                })
                .collect();
            script.push_str(&rows.join(", "));
            script.push(';');
        }
        let mut db = Database::new();
        db.run_script(&script).unwrap_or_else(|e| panic!("{e}\n{script}"));
        let stored = db.table("round_trip").unwrap().data();
        prop_assert_eq!(stored.len(), retyped.len());
        for (a, b) in retyped.rows().iter().zip(stored.rows()) {
            for i in 0..COLS {
                let attr = Attr::from(i);
                prop_assert_eq!(a.get(attr).to_string(), b.get(attr).to_string());
            }
        }
    }
}
