//! Round-trip properties of the serialization layers: SQL DDL render →
//! parse, CSV write → read, and profile consistency — over random
//! schemata, constraint sets and tables.

mod common;

use common::*;
use proptest::prelude::*;
use sqlnf::model::stats::profile;
use sqlnf::prelude::*;

const COLS: usize = 4;

fn named_schema(nfs: AttrSet) -> TableSchema {
    let names: Vec<String> = (0..COLS).map(|i| format!("col_{i}")).collect();
    let nn: Vec<String> = nfs.iter().map(|a| format!("col_{}", a.index())).collect();
    let nn_refs: Vec<&str> = nn.iter().map(String::as_str).collect();
    TableSchema::new("round_trip", names, &nn_refs)
}

/// Identifiers that force the renderer to quote: reserved words of the
/// dialect, spaces, punctuation that doubles as statement syntax,
/// leading digits, non-ASCII. All pairwise distinct, none contain `"`.
const WEIRD: &[&str] = &[
    "create",
    "table",
    "insert",
    "values",
    "constraint",
    "certain",
    "possible",
    "key",
    "fd",
    "not",
    "null",
    "first name",
    "order id",
    "2fast",
    "semi;colon",
    "comma,name",
    "paren(thetical)",
    "λ-col",
    "UPPER lower",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// DDL round-trip: render_create_table ∘ parse = identity on
    /// (columns, NFS, Σ).
    #[test]
    fn ddl_round_trip(sigma in sigma(COLS, 5), nfs in attr_subset(COLS)) {
        let schema = named_schema(nfs);
        let ddl = render_create_table(&schema, &sigma);
        let stmt = parse_statement(&ddl).unwrap_or_else(|e| panic!("{e}\n{ddl}"));
        let Statement::CreateTable { schema: s2, sigma: g2 } = stmt else {
            panic!("expected CREATE TABLE");
        };
        prop_assert_eq!(schema.column_names(), s2.column_names());
        prop_assert_eq!(schema.nfs(), s2.nfs());
        prop_assert_eq!(&sigma, &g2);
    }

    /// DDL round-trip survives hostile identifiers: reserved words,
    /// spaces, semicolons/commas/parens, leading digits, unicode. The
    /// renderer must quote them and the parser must recover the exact
    /// names (the column window slides over [`WEIRD`]; the table name
    /// is drawn independently and may collide with a column name).
    #[test]
    fn weird_identifier_ddl_round_trip(
        start in 0usize..WEIRD.len(),
        tname in 0usize..WEIRD.len(),
        sigma in sigma(COLS, 4),
        nfs in attr_subset(COLS),
    ) {
        let names: Vec<&str> =
            (0..COLS).map(|i| WEIRD[(start + i) % WEIRD.len()]).collect();
        let nn: Vec<&str> = nfs.iter().map(|a| names[a.index()]).collect();
        let schema = TableSchema::new(WEIRD[tname], names, &nn);
        let ddl = render_create_table(&schema, &sigma);
        let stmt = parse_statement(&ddl).unwrap_or_else(|e| panic!("{e}\n{ddl}"));
        let Statement::CreateTable { schema: s2, sigma: g2 } = stmt else {
            panic!("expected CREATE TABLE");
        };
        prop_assert_eq!(schema.name(), s2.name());
        prop_assert_eq!(schema.column_names(), s2.column_names());
        prop_assert_eq!(schema.nfs(), s2.nfs());
        prop_assert_eq!(&sigma, &g2);
    }

    /// INSERT round-trip: `render_insert` output re-parses to the same
    /// target table and the identical tuple sequence (order and
    /// multiplicity included).
    #[test]
    fn insert_round_trip(
        tname in 0usize..WEIRD.len(),
        rows in proptest::collection::vec(
            proptest::collection::vec(small_value(), COLS), 1..8),
    ) {
        let tuples: Vec<Tuple> = rows.into_iter().map(Tuple::new).collect();
        let src = render_insert(WEIRD[tname], &tuples);
        let stmt = parse_statement(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        let Statement::Insert { table, rows: parsed } = stmt else {
            panic!("expected INSERT");
        };
        prop_assert_eq!(table.as_str(), WEIRD[tname]);
        prop_assert_eq!(parsed, tuples);
    }

    /// CSV round-trip up to value *rendering*: a loaded table has the
    /// same shape, null pattern and (string-rendered) cells.
    #[test]
    fn csv_round_trip(table in small_table(COLS, 8)) {
        let csv = table_to_csv(&table);
        let loaded = table_from_csv("t", &csv).unwrap();
        prop_assert_eq!(loaded.len(), table.len());
        prop_assert_eq!(loaded.schema().arity(), table.schema().arity());
        for (a, b) in table.rows().iter().zip(loaded.rows()) {
            for i in 0..COLS {
                let attr = Attr::from(i);
                prop_assert_eq!(a.get(attr).is_null(), b.get(attr).is_null());
                prop_assert_eq!(a.get(attr).to_string(), b.get(attr).to_string());
            }
        }
        // Constraint satisfaction is invariant under the round trip
        // (values compare only by equality, which rendering preserves
        // on this domain).
        let all = AttrSet::first_n(COLS);
        for x in all.subsets() {
            prop_assert_eq!(
                satisfies_key(&table, &Key::certain(x)),
                satisfies_key(&loaded, &Key::certain(x))
            );
        }
    }

    /// Profiles are consistent with direct queries.
    #[test]
    fn profile_consistency(table in small_table(COLS, 8)) {
        let p = profile(&table);
        prop_assert_eq!(p.rows, table.len());
        prop_assert_eq!(p.columns, COLS);
        prop_assert_eq!(p.distinct_rows, table.distinct_count());
        prop_assert_eq!(p.rows - p.duplicate_rows, p.distinct_rows);
        let nulls: usize = (0..COLS).map(|i| table.null_count(Attr::from(i))).collect::<Vec<_>>().iter().sum();
        prop_assert_eq!(p.total_nulls, nulls);
        for (i, c) in p.column_profiles.iter().enumerate() {
            prop_assert_eq!(c.nulls, table.null_count(Attr::from(i)));
            prop_assert_eq!(c.distinct, table.active_domain(Attr::from(i)).len());
        }
    }

    /// An engine loaded through generated DDL+INSERT equals the direct
    /// table, when the data satisfies the constraints.
    #[test]
    fn script_load_matches_direct(table in small_table(COLS, 6), sigma in sigma(COLS, 2)) {
        let schema = named_schema(AttrSet::EMPTY);
        let retyped = Table::from_rows(schema.clone(), table.rows().to_vec());
        prop_assume!(satisfies_all(&retyped, &sigma));
        let mut script = render_create_table(&schema, &sigma);
        if !retyped.is_empty() {
            script.push_str("\nINSERT INTO round_trip VALUES ");
            let rows: Vec<String> = retyped
                .rows()
                .iter()
                .map(|t| {
                    let vals: Vec<String> = t
                        .values()
                        .iter()
                        .map(|v| match v {
                            Value::Null => "NULL".to_owned(),
                            Value::Int(i) => i.to_string(),
                            Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
                            Value::Bool(b) => b.to_string().to_uppercase(),
                        })
                        .collect();
                    format!("({})", vals.join(", "))
                })
                .collect();
            script.push_str(&rows.join(", "));
            script.push(';');
        }
        let mut db = Database::new();
        db.run_script(&script).unwrap_or_else(|e| panic!("{e}\n{script}"));
        let stored = db.table("round_trip").unwrap().data();
        prop_assert_eq!(stored.len(), retyped.len());
        for (a, b) in retyped.rows().iter().zip(stored.rows()) {
            for i in 0..COLS {
                let attr = Attr::from(i);
                prop_assert_eq!(a.get(attr).to_string(), b.get(attr).to_string());
            }
        }
    }
}
