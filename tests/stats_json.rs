//! End-to-end check of the CLI observability surface: `--stats-json`
//! must emit a valid JSON document whose counters reflect the work the
//! subcommand actually did.
//!
//! Kept as its own integration binary: `run` resets the process-wide
//! registry when a report is requested, which must not race with other
//! tests of the crate.

use sqlnf::cli::run;
use sqlnf_obs::json::{parse, JsonValue};
use sqlnf_obs::ObsReport;

const CSV: &str = "\
a,b,c,d
1,10,100,1
1,10,200,2
2,20,100,2
2,20,200,1
3,30,100,1
";

fn tempdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("sqlnf_stats_json_test");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn argv(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| s.to_string()).collect()
}

fn counter(doc: &JsonValue, name: &str) -> u64 {
    doc.get("counters")
        .and_then(|c| c.get(name))
        .and_then(JsonValue::as_u64)
        .unwrap_or(0)
}

#[test]
fn mine_stats_json_reports_lattice_and_partition_work() {
    let dir = tempdir();
    let csv_path = dir.join("mine_input.csv");
    let json_path = dir.join("mine_stats.json");
    std::fs::write(&csv_path, CSV).expect("write csv");

    let out = run(&argv(&[
        "mine",
        &csv_path.display().to_string(),
        "2",
        "--stats-json",
        &json_path.display().to_string(),
    ]))
    .expect("mine runs");
    assert!(out.contains("minimal FDs"), "{out}");

    let text = std::fs::read_to_string(&json_path).expect("stats file written");
    let doc = parse(&text).expect("stats file is valid JSON");
    assert_eq!(doc.get("command").and_then(JsonValue::as_str), Some("mine"));
    // The mining run visits lattice levels 0..=2, builds the
    // single-attribute partitions and products them for the
    // two-attribute candidates.
    assert!(
        counter(&doc, "discovery.mine.lattice_levels") >= 3,
        "{text}"
    );
    assert!(counter(&doc, "discovery.mine.candidates_checked") > 0);
    assert!(counter(&doc, "discovery.partition.builds") > 0);
    assert!(counter(&doc, "discovery.partition.products") > 0);
    assert!(counter(&doc, "discovery.partition.rows_scanned") > 0);
    // The document also parses through the typed reader (extra keys are
    // ignored).
    let report = ObsReport::from_json(&text).expect("typed parse");
    assert!(report.counter("discovery.mine.candidates_pruned").is_some());
}

#[test]
fn profile_stats_json_embeds_the_table_profile() {
    let dir = tempdir();
    let csv_path = dir.join("profile_input.csv");
    let json_path = dir.join("profile_stats.json");
    std::fs::write(&csv_path, CSV).expect("write csv");

    let out = run(&argv(&[
        "profile",
        &csv_path.display().to_string(),
        "--stats-json",
        &json_path.display().to_string(),
    ]))
    .expect("profile runs");
    assert!(out.contains("profile_input"), "{out}");

    let text = std::fs::read_to_string(&json_path).expect("stats file written");
    let doc = parse(&text).expect("valid JSON");
    assert_eq!(
        doc.get("command").and_then(JsonValue::as_str),
        Some("profile")
    );
    let profile = doc.get("profile").expect("profile payload");
    assert_eq!(profile.get("rows").and_then(JsonValue::as_u64), Some(5));
    assert_eq!(profile.get("columns").and_then(JsonValue::as_u64), Some(4));
    let cols = profile
        .get("column_profiles")
        .and_then(JsonValue::as_array)
        .expect("column profiles");
    assert_eq!(cols.len(), 4);
    assert_eq!(cols[0].get("name").and_then(JsonValue::as_str), Some("a"));
}
