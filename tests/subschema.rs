//! Sub-schema (projection) behaviour: the restricted-enumeration cover
//! of `Σ[X]` gives the same normal-form verdicts as full enumeration
//! (Theorems 8 and 17 make the underlying problem co-NP complete, so
//! both sides here are exponential — the point is agreement and the
//! worked examples).

mod common;

use common::*;
use proptest::prelude::*;
use sqlnf::core::projection::project_sigma;
use sqlnf::prelude::*;

const COLS: usize = 4;

/// Cover of Σ[X] by full subset enumeration (reference).
fn project_sigma_full(t: AttrSet, nfs: AttrSet, sigma: &Sigma, x: AttrSet) -> Sigma {
    let r = Reasoner::new(t, nfs, sigma);
    let mut out = Sigma::new();
    for v in x.subsets() {
        let rhs_p = r.p_closure(v) & x;
        if !rhs_p.is_subset(v) {
            out.add(Fd::possible(v, rhs_p));
        }
        let rhs_c = r.c_closure(v) & x;
        if !rhs_c.is_subset(v & nfs) {
            out.add(Fd::certain(v, rhs_c));
        }
        if r.implies_key(&Key::possible(v)) {
            out.add(Key::possible(v));
        }
        if r.implies_key(&Key::certain(v)) {
            out.add(Key::certain(v));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The shipped cover is equivalent to the full one, and the BCNF
    /// verdict of the projected schema agrees between the two.
    #[test]
    fn projection_cover_agreement(
        sigma in sigma(COLS, 4),
        nfs in attr_subset(COLS),
        x in nonempty_subset(COLS),
    ) {
        let t = AttrSet::first_n(COLS);
        let fast = project_sigma(t, nfs, &sigma, x);
        let full = project_sigma_full(t, nfs, &sigma, x);
        let local_nfs = nfs & x;
        prop_assert!(equivalent(x, local_nfs, &fast, &full));
        prop_assert_eq!(
            is_bcnf(x, local_nfs, &fast),
            is_bcnf(x, local_nfs, &full)
        );
    }

    /// Projection onto the full attribute set is the identity (up to
    /// equivalence).
    #[test]
    fn projection_onto_t_is_identity(
        sigma in sigma(COLS, 4),
        nfs in attr_subset(COLS),
    ) {
        let t = AttrSet::first_n(COLS);
        let proj = project_sigma(t, nfs, &sigma, t);
        prop_assert!(equivalent(t, nfs, &proj, &sigma));
    }

    /// Projection is monotone in the implication sense: a constraint of
    /// Σ whose attributes all lie inside X is implied by the cover.
    #[test]
    fn projection_retains_inner_constraints(
        sigma in sigma(COLS, 4),
        nfs in attr_subset(COLS),
        x in nonempty_subset(COLS),
    ) {
        let t = AttrSet::first_n(COLS);
        let proj = project_sigma(t, nfs, &sigma, x);
        let r = Reasoner::new(x, nfs & x, &proj);
        for c in sigma.iter() {
            let attrs = match c {
                Constraint::Fd(fd) => fd.attrs(),
                Constraint::Key(k) => k.attrs,
            };
            if attrs.is_subset(x) {
                prop_assert!(r.implies(&c), "lost {c} in Σ[{x:?}]");
            }
        }
    }
}

/// The paper's Theorem 8 context: BCNF of a projection can differ from
/// BCNF of the base schema in both directions.
#[test]
fn projection_can_gain_and_lose_bcnf() {
    let t = AttrSet::first_n(3);
    // a →_w b with key c⟨a,c⟩: not BCNF on (a,b,c) (a is not a key);
    // projecting onto (a,b) — where a determines everything and earns
    // no key… still not BCNF; but projecting onto (a,c) drops the FD
    // and IS BCNF.
    let sigma = Sigma::new()
        .with(Fd::certain(
            AttrSet::from_indices([0]),
            AttrSet::from_indices([1]),
        ))
        .with(Key::certain(AttrSet::from_indices([0, 2])));
    assert!(!is_bcnf(t, t, &sigma));
    let ab = AttrSet::from_indices([0, 1]);
    let proj_ab = project_sigma(t, t, &sigma, ab);
    assert!(!is_bcnf(ab, ab, &proj_ab));
    let ac = AttrSet::from_indices([0, 2]);
    let proj_ac = project_sigma(t, t, &sigma, ac);
    assert!(is_bcnf(ac, ac, &proj_ac));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// BCNF is *preserved* under projection: a violating FD `V → W` of
    /// `Σ[X]` would have `V`'s key in `Σ⁺`, and a key on `V ⊆ X`
    /// projects along with the FD. (An exhaustive search over small
    /// certain-only Σ confirms no counterexample exists; this test
    /// keeps the property honest for the general class.)
    #[test]
    fn bcnf_is_preserved_by_projection(
        sigma in sigma(COLS, 4),
        nfs in attr_subset(COLS),
        x in nonempty_subset(COLS),
    ) {
        let t = AttrSet::first_n(COLS);
        prop_assume!(is_bcnf(t, nfs, &sigma));
        let proj = project_sigma(t, nfs, &sigma, x);
        prop_assert!(is_bcnf(x, nfs & x, &proj), "Σ[{x:?}] of a BCNF schema violates BCNF");
    }
}
