//! Property-based verification of the paper's theorems across crate
//! boundaries: randomized schemata, constraint sets and instances.

mod common;

use common::*;
use proptest::prelude::*;
use sqlnf::core::axioms::DerivationEngine;
use sqlnf::core::closure::{c_closure_naive, p_closure_naive};
use sqlnf::core::normal_forms::{redundancy_witness, value_redundancy_witness};
use sqlnf::core::redundancy::{is_redundant, redundant_positions};
use sqlnf::core::witness::violation_witness;
use sqlnf::prelude::*;

const COLS: usize = 3;

fn schema_over(cols: usize, nfs: AttrSet) -> TableSchema {
    let names: Vec<String> = (0..cols).map(|i| format!("a{i}")).collect();
    let nn: Vec<String> = nfs.iter().map(|a| format!("a{}", a.index())).collect();
    let nn_refs: Vec<&str> = nn.iter().map(String::as_str).collect();
    TableSchema::new("t", names, &nn_refs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorems 2, 4, 5: the linear-time decision procedures agree with
    /// the exact 2-tuple oracle on every FD and key query.
    #[test]
    fn implication_matches_oracle(
        sigma in sigma(COLS, 5),
        nfs in attr_subset(COLS),
    ) {
        let t = AttrSet::first_n(COLS);
        let r = Reasoner::new(t, nfs, &sigma);
        for x in t.subsets() {
            for m in [Modality::Possible, Modality::Certain] {
                for y in t.subsets() {
                    let phi = Constraint::Fd(Fd { lhs: x, rhs: y, modality: m });
                    prop_assert_eq!(r.implies(&phi), oracle_implies(t, nfs, &sigma, &phi));
                }
                let phi = Constraint::Key(Key { attrs: x, modality: m });
                prop_assert_eq!(r.implies(&phi), oracle_implies(t, nfs, &sigma, &phi));
            }
            // The weak FD as a query: the oracle must agree with the
            // p-closure collapse (Σ ⊨ X →_weak Y iff Y ⊆ X*p).
            for y in t.subsets() {
                prop_assert_eq!(
                    r.implies_weak_fd(x, y),
                    oracle_implies_weak_fd(t, nfs, &sigma, x, y)
                );
            }
        }
    }

    /// Theorems 2, 4, 5 on wide schemata: beyond the exhaustive 3-attr
    /// check above, sample implication queries over 4–6 attributes —
    /// the widths the fuzz harness generates — and require the
    /// linear-time [`Reasoner`] to agree with the exact 2-tuple oracle
    /// on p-/c-FDs and p-/c-keys, and [`counter_model`] to produce a
    /// witness exactly when implication fails.
    #[test]
    fn implication_matches_oracle_wide(
        case in (4usize..=6).prop_flat_map(|cols| (
            Just(cols),
            sigma(cols, 6),
            attr_subset(cols),
            proptest::collection::vec((attr_subset(cols), attr_subset(cols)), 16),
        )),
    ) {
        let (cols, sigma, nfs, pairs) = case;
        let t = AttrSet::first_n(cols);
        let r = Reasoner::new(t, nfs, &sigma);
        for &(x, y) in &pairs {
            for m in [Modality::Possible, Modality::Certain] {
                for phi in [
                    Constraint::Fd(Fd { lhs: x, rhs: y, modality: m }),
                    Constraint::Key(Key { attrs: x, modality: m }),
                ] {
                    let fast = r.implies(&phi);
                    prop_assert_eq!(fast, oracle_implies(t, nfs, &sigma, &phi), "{}", phi);
                    // A counter-model exists iff implication fails, and
                    // any witness genuinely separates Σ from φ.
                    match counter_model(t, nfs, &sigma, &phi) {
                        Some(w) => {
                            prop_assert!(!fast, "witness against implied {}", phi);
                            prop_assert!(w.satisfies_all(&sigma) && !w.satisfies(&phi));
                        }
                        None => prop_assert!(fast, "no witness yet {} not implied", phi),
                    }
                }
            }
            // Weak-FD queries on the same wide schemata, with witness
            // consistency: `weak_counter_model` produces a genuine
            // separating pair exactly when implication fails.
            let fast = r.implies_weak_fd(x, y);
            prop_assert_eq!(fast, oracle_implies_weak_fd(t, nfs, &sigma, x, y));
            match weak_counter_model(t, nfs, &sigma, x, y) {
                Some(w) => {
                    prop_assert!(!fast, "witness against implied weak {:?}->{:?}", x, y);
                    prop_assert!(w.satisfies_all(&sigma) && !w.satisfies_weak_fd(x, y));
                }
                None => prop_assert!(fast, "no witness yet weak {:?}->{:?} not implied", x, y),
            }
        }
    }

    /// Theorems 1 and 4: the axiom system derives exactly the implied
    /// constraints (soundness + completeness) on random inputs.
    #[test]
    fn axioms_sound_and_complete(
        sigma in sigma(COLS, 4),
        nfs in attr_subset(COLS),
    ) {
        let t = AttrSet::first_n(COLS);
        let engine = DerivationEngine::saturate(t, nfs, &sigma);
        let r = Reasoner::new(t, nfs, &sigma);
        for x in t.subsets() {
            for m in [Modality::Possible, Modality::Certain] {
                for y in t.subsets() {
                    let phi = Constraint::Fd(Fd { lhs: x, rhs: y, modality: m });
                    prop_assert_eq!(engine.derives(&phi), r.implies(&phi), "{}", phi);
                }
                let phi = Constraint::Key(Key { attrs: x, modality: m });
                prop_assert_eq!(engine.derives(&phi), r.implies(&phi), "{}", phi);
            }
        }
    }

    /// Theorem 3: the linear closures equal the paper's Algorithms 1–2.
    #[test]
    fn closures_agree_with_naive(
        sigma in sigma(4, 6),
        nfs in attr_subset(4),
        x in attr_subset(4),
    ) {
        let fds = sigma.fd_projection(AttrSet::first_n(4));
        prop_assert_eq!(
            sqlnf::core::closure::p_closure(&fds, nfs, x),
            p_closure_naive(&fds, nfs, x)
        );
        prop_assert_eq!(
            sqlnf::core::closure::c_closure(&fds, nfs, x),
            c_closure_naive(&fds, nfs, x)
        );
    }

    /// Lemma 1 on random inputs.
    #[test]
    fn lemma1_closure_properties(
        sigma in sigma(4, 6),
        nfs in attr_subset(4),
        x in attr_subset(4),
        y in attr_subset(4),
    ) {
        let t = AttrSet::first_n(4);
        let r = Reasoner::new(t, nfs, &sigma);
        let (xp, xc) = (r.p_closure(x), r.c_closure(x));
        prop_assert!(x.is_subset(xp));
        prop_assert!(xc.is_subset(xp));
        prop_assert!(r.c_closure(xc).is_subset(xc));
        prop_assert!(r.c_closure(xp).is_subset(xp));
        if x.is_subset(y) {
            prop_assert!(xp.is_subset(r.p_closure(y)));
            prop_assert!(xc.is_subset(r.c_closure(y)));
        }
    }

    /// Lemma 2 and its FD analogues: every produced witness satisfies
    /// (T, T_S, Σ) and violates φ.
    #[test]
    fn witnesses_are_genuine(
        sigma in sigma(COLS, 4),
        nfs in attr_subset(COLS),
        x in attr_subset(COLS),
        y in attr_subset(COLS),
    ) {
        let t = AttrSet::first_n(COLS);
        let r = Reasoner::new(t, nfs, &sigma);
        let schema = schema_over(COLS, nfs);
        let queries = [
            Constraint::Fd(Fd::possible(x, y)),
            Constraint::Fd(Fd::certain(x, y)),
            Constraint::Key(Key::possible(x)),
            Constraint::Key(Key::certain(x)),
        ];
        for phi in queries {
            if let Some(w) = violation_witness(&r, &phi) {
                let table = w.into_table(schema.clone());
                prop_assert!(table.satisfies_nfs());
                prop_assert!(satisfies_all(&table, &sigma), "phi={} table=\n{}", phi, table);
                prop_assert!(!satisfies(&table, &phi), "phi={} table=\n{}", phi, table);
            }
        }
    }

    /// Theorem 9, constructive direction: a schema not in BCNF admits
    /// an instance with a redundant position.
    #[test]
    fn non_bcnf_schemas_admit_redundancy(
        sigma in sigma(COLS, 4),
        nfs in attr_subset(COLS),
    ) {
        let t = AttrSet::first_n(COLS);
        if let Some((table, pos)) = redundancy_witness(t, nfs, &sigma) {
            prop_assert!(!is_bcnf(t, nfs, &sigma));
            prop_assert!(table.satisfies_nfs());
            prop_assert!(satisfies_all(&table, &sigma));
            prop_assert!(is_redundant(&table, &sigma, pos));
        } else {
            prop_assert!(is_bcnf(t, nfs, &sigma));
        }
    }

    /// Theorem 9, semantic direction: schemata in BCNF admit no
    /// redundant position in any Σ-satisfying instance (sampled).
    #[test]
    fn bcnf_instances_are_redundancy_free(
        sigma in sigma(COLS, 3),
        nfs in attr_subset(COLS),
        table in small_table(COLS, 4),
    ) {
        let t = AttrSet::first_n(COLS);
        prop_assume!(is_bcnf(t, nfs, &sigma));
        // Re-declare the table over (T, T_S) and keep only valid ones.
        let retyped = Table::from_rows(schema_over(COLS, nfs), table.rows().to_vec());
        prop_assume!(retyped.satisfies_nfs() && satisfies_all(&retyped, &sigma));
        prop_assert!(
            redundant_positions(&retyped, &sigma).is_empty(),
            "BCNF schema with redundant instance:\n{}",
            retyped
        );
    }

    /// Theorem 15, both directions (sampled): SQL-BCNF ⇒ no value
    /// redundancy in satisfying instances; ¬SQL-BCNF ⇒ the constructed
    /// witness carries a value-redundant non-null position.
    #[test]
    fn vrnf_is_sql_bcnf(
        sigma in total_sigma(COLS, 3),
        nfs in attr_subset(COLS),
        table in small_table(COLS, 4),
    ) {
        let t = AttrSet::first_n(COLS);
        match value_redundancy_witness(t, nfs, &sigma).unwrap() {
            Some((w, pos)) => {
                prop_assert_eq!(is_sql_bcnf(t, nfs, &sigma), Ok(false));
                prop_assert!(satisfies_all(&w, &sigma));
                prop_assert!(w.rows()[pos.row].get(pos.col).is_total());
                prop_assert!(is_redundant(&w, &sigma, pos));
            }
            None => {
                prop_assert_eq!(is_sql_bcnf(t, nfs, &sigma), Ok(true));
                let retyped = Table::from_rows(schema_over(COLS, nfs), table.rows().to_vec());
                if retyped.satisfies_nfs() && satisfies_all(&retyped, &sigma) {
                    prop_assert!(
                        sqlnf::core::redundancy::value_redundant_positions(&retyped, &sigma)
                            .is_empty(),
                        "VRNF schema with value-redundant instance:\n{}",
                        retyped
                    );
                }
            }
        }
    }

    /// Theorem 11: decomposing an instance by a *satisfied* certain FD
    /// is lossless under the equality join.
    #[test]
    fn theorem11_lossless(
        table in small_table(4, 6),
        lhs in attr_subset(4),
        rhs in attr_subset(4),
    ) {
        let fd = Fd::certain(lhs, rhs);
        prop_assume!(satisfies_fd(&table, &fd));
        // Both components must be non-empty attribute sets.
        let t4 = AttrSet::first_n(4);
        prop_assume!(!(lhs | rhs).is_empty());
        prop_assume!(!(lhs | (t4 - (lhs | rhs))).is_empty());
        let (rest, xy) = decompose_instance_by_cfd(&table, &fd);
        let joined = join(&rest, &xy, "j");
        let reordered = reorder_columns(&joined, table.schema().column_names());
        prop_assert!(table.multiset_eq(&reordered), "lossy:\n{}", table);
    }

    /// Theorem 12: if the total companion X →_w XY also holds, the
    /// c-key c⟨X⟩ holds on the set projection I[XY].
    #[test]
    fn theorem12_ckey_on_projection(
        table in small_table(4, 6),
        lhs in nonempty_subset(4),
        extra in attr_subset(4),
    ) {
        let rhs = lhs | extra;
        let fd = Fd::certain(lhs, rhs);
        prop_assume!(satisfies_fd(&table, &fd));
        let proj = project_set(&table, rhs, "xy");
        let translated = table.schema().translate_into_projection(rhs, lhs);
        prop_assert!(
            satisfies_key(&proj, &Key::certain(translated)),
            "c-key fails on projection of\n{}",
            table
        );
    }

    /// Algorithm 3 (Theorem 16): the decomposition is well-formed — it
    /// covers T, every component is in SQL-BCNF (VRNF), and it is
    /// lossless on satisfying instances.
    #[test]
    fn algorithm3_correct(
        sigma in total_sigma(COLS, 3),
        nfs in attr_subset(COLS),
        table in small_table(COLS, 5),
    ) {
        let t = AttrSet::first_n(COLS);
        let d = vrnf_decompose(t, nfs, &sigma).unwrap();
        let mut covered = AttrSet::EMPTY;
        for comp in &d.components {
            covered |= comp.attrs;
            prop_assert_eq!(
                is_sql_bcnf(comp.attrs, nfs & comp.attrs, &comp.sigma),
                Ok(true),
                "component not in VRNF: {:?}",
                comp
            );
        }
        prop_assert_eq!(covered, t);
        let retyped = Table::from_rows(schema_over(COLS, nfs), table.rows().to_vec());
        if retyped.satisfies_nfs() && satisfies_all(&retyped, &sigma) {
            prop_assert!(d.is_lossless_on(&retyped), "lossy on:\n{}", retyped);
        }
    }
}
