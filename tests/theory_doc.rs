//! Keeps docs/THEORY.md honest: its code snippets, verbatim.

use sqlnf::prelude::*;

#[test]
fn section1_snippet() {
    let fig3 = sqlnf::datagen::paper::fig3_duplicates();
    let ic = fig3.schema().set(&["item", "catalog"]);
    assert!(satisfies_fd(
        &fig3,
        &Fd::certain(ic, fig3.schema().set(&["price"]))
    ));
    assert!(!satisfies_key(&fig3, &Key::possible(ic)));
}

#[test]
fn section3_snippet() {
    let schema = TableSchema::new(
        "purchase",
        ["order_id", "item", "catalog", "price"],
        &["order_id", "catalog", "price"],
    );
    let sigma = Sigma::new()
        .with(Fd::possible(
            schema.set(&["order_id", "item"]),
            schema.set(&["catalog"]),
        ))
        .with(Fd::certain(
            schema.set(&["item", "catalog"]),
            schema.set(&["price"]),
        ));
    let r = Reasoner::new(schema.attrs(), schema.nfs(), &sigma);
    assert!(r.implies_fd(&Fd::possible(
        schema.set(&["order_id", "item"]),
        schema.set(&["price"])
    )));
    assert!(!r.implies_fd(&Fd::certain(
        schema.set(&["order_id", "item"]),
        schema.set(&["price"])
    )));
}

#[test]
fn section5_snippet() {
    let schema = TableSchema::new(
        "purchase",
        ["order_id", "item", "catalog", "price"],
        &["order_id", "item", "price"],
    );
    let sigma = Sigma::new().with(Fd::certain(
        schema.set(&["order_id", "item", "catalog"]),
        schema.attrs(),
    ));
    let normalized = SchemaDesign::new(schema, sigma).normalize().unwrap();
    assert!(normalized.children.iter().all(|c| c.is_vrnf() == Ok(true)));
}
