//! End-to-end `WATCH` over the wire: a live server, one subscriber
//! session, one writer session. The subscriber must see every fact
//! appearance/refutation in commit (epoch) order, each confirmed by a
//! from-scratch mine of the corresponding statement prefix, and must
//! never see an epoch the durable history doesn't contain.

use sqlnf::prelude::*;
use sqlnf_serve::{table_facts, table_facts_with, Client, ServeConfig, Server, StreamItem};
use std::collections::BTreeSet;
use std::time::Duration;

const STMTS: &[&str] = &[
    "CREATE TABLE t (a INT, b INT, c INT);",
    "INSERT INTO t VALUES (1, 1, 1);",
    "INSERT INTO t VALUES (1, 2, 1);",
    "INSERT INTO t VALUES (2, 2, NULL);",
    "INSERT INTO t VALUES (2, 2, 2), (3, 1, 2);",
    "INSERT INTO t VALUES (3, 1, 2);",
];

fn watcher_client(server: &Server) -> Client {
    // Short timeout: `next_event() == None` then means "stream idle",
    // and the drain loop below stays fast.
    Client::connect_with_timeout(server.local_addr(), Some(Duration::from_millis(300))).unwrap()
}

fn drain_all(watcher: &mut Client) -> Vec<StreamItem> {
    let mut items = Vec::new();
    while let Some(item) = watcher.next_event().unwrap() {
        items.push(item);
    }
    items
}

#[test]
fn subscriber_streams_every_fact_change_in_commit_order() {
    let server = Server::start(ServeConfig::default()).unwrap();
    server.store().enable_oplog();
    let mut watcher = watcher_client(&server);
    watcher.watch(Some("t")).unwrap();

    let mut writer = Client::connect(server.local_addr()).unwrap();
    for stmt in STMTS {
        writer.expect_ok(stmt).unwrap();
    }
    // Every statement is committed (acked), so after the hub fence all
    // events are queued; the next idle poll flushes them.
    server.store().watch_barrier();
    let items = drain_all(&mut watcher);

    // Expected stream: diff from-scratch fact sets of consecutive
    // statement prefixes. Epochs are 1-based and contiguous because
    // the single writer's statements all committed.
    let mut expected = Vec::new();
    let mut db = Database::new();
    let mut before = BTreeSet::new();
    for (i, stmt) in STMTS.iter().enumerate() {
        db.run_script(stmt).unwrap();
        let now = table_facts(db.table("t").unwrap().data(), 3);
        for fact in before.difference(&now) {
            expected.push(format!("EVENT {} t -{fact}", i + 1));
        }
        for fact in now.difference(&before) {
            expected.push(format!("EVENT {} t +{fact}", i + 1));
        }
        before = now;
    }
    let got: Vec<String> = items
        .iter()
        .map(|item| match item {
            StreamItem::Event(ev) => ev.line(),
            StreamItem::Lagged(n) => panic!("subscriber lagged by {n}"),
        })
        .collect();
    assert_eq!(got, expected);

    // Watermark: every streamed epoch is in the durable history (the
    // oplog records the committed payloads in epoch order, epochs
    // starting at 1).
    let durable = server.store().oplog().len() as u64;
    for item in &items {
        if let StreamItem::Event(ev) = item {
            assert!(
                ev.epoch >= 1 && ev.epoch <= durable,
                "event for non-durable epoch {} (durable through {durable})",
                ev.epoch
            );
        }
    }

    // The hub mines through the incremental engine, so its counters
    // surface in the same process's METRICS exposition.
    if sqlnf_obs::ENABLED {
        let text = writer.metrics().unwrap();
        let samples = sqlnf_serve::parse_exposition(&text).expect("exposition parses");
        for name in ["discovery.incr.deltas", "discovery.incr.candidates_touched"] {
            assert!(
                samples.iter().any(|s| s.name == "sqlnf_counter"
                    && s.label("name") == Some(name)
                    && s.value > 0.0),
                "no live sample for {name}"
            );
        }
    }

    let (rest, _) = watcher.unwatch().unwrap();
    assert!(rest.is_empty(), "stream already drained: {rest:?}");
    watcher.quit().unwrap();
    writer.quit().unwrap();
    server.shutdown().unwrap();
}

/// `WATCH t weak` over the wire: the weak subscriber's stream must be
/// byte-deterministic against from-scratch `table_facts_with(.., true)`
/// prefix diffs, while a default subscriber on the same server sees the
/// pre-weak stream byte-identically (no `wfd:` leakage).
#[test]
fn weak_subscriber_stream_is_deterministic_and_isolated() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let mut weak_watcher = watcher_client(&server);
    weak_watcher.watch_weak(Some("t")).unwrap();
    let mut plain_watcher = watcher_client(&server);
    plain_watcher.watch(Some("t")).unwrap();

    let mut writer = Client::connect(server.local_addr()).unwrap();
    for stmt in STMTS {
        writer.expect_ok(stmt).unwrap();
    }
    server.store().watch_barrier();
    let weak_items = drain_all(&mut weak_watcher);
    let plain_items = drain_all(&mut plain_watcher);

    let mut expect_weak = Vec::new();
    let mut expect_plain = Vec::new();
    let mut db = Database::new();
    let (mut before_weak, mut before_plain) = (BTreeSet::new(), BTreeSet::new());
    for (i, stmt) in STMTS.iter().enumerate() {
        db.run_script(stmt).unwrap();
        let data = db.table("t").unwrap().data();
        for (include_weak, before, expected) in [
            (true, &mut before_weak, &mut expect_weak),
            (false, &mut before_plain, &mut expect_plain),
        ] {
            let now = table_facts_with(data, 3, include_weak);
            for fact in before.difference(&now) {
                expected.push(format!("EVENT {} t -{fact}", i + 1));
            }
            for fact in now.difference(before) {
                expected.push(format!("EVENT {} t +{fact}", i + 1));
            }
            *before = now;
        }
    }
    let lines = |items: &[StreamItem]| -> Vec<String> {
        items
            .iter()
            .map(|item| match item {
                StreamItem::Event(ev) => ev.line(),
                StreamItem::Lagged(n) => panic!("subscriber lagged by {n}"),
            })
            .collect()
    };
    let weak_got = lines(&weak_items);
    assert!(
        weak_got.iter().any(|l| l.contains("wfd:")),
        "weak plane streamed no wfd facts: {weak_got:?}"
    );
    assert_eq!(weak_got, expect_weak);
    let plain_got = lines(&plain_items);
    assert!(plain_got.iter().all(|l| !l.contains("wfd:")));
    assert_eq!(plain_got, expect_plain);

    weak_watcher.quit().unwrap();
    plain_watcher.quit().unwrap();
    writer.quit().unwrap();
    server.shutdown().unwrap();
}

#[test]
fn unwatch_drains_pending_events_before_confirming() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let mut watcher = watcher_client(&server);
    watcher.watch(None).unwrap();

    let mut writer = Client::connect(server.local_addr()).unwrap();
    writer.expect_ok("CREATE TABLE u (x INT, y INT);").unwrap();
    writer.expect_ok("INSERT INTO u VALUES (1, 1);").unwrap();
    server.store().watch_barrier();

    // UNWATCH races the idle flush; either way every queued event must
    // arrive before (or with) the confirmation, in order.
    let (mut items, reply) = watcher.unwatch().unwrap();
    assert!(reply.ok);
    while let Some(item) = watcher.next_event().unwrap_or(None) {
        items.push(item);
    }
    assert!(
        items
            .iter()
            .any(|i| matches!(i, StreamItem::Event(ev) if ev.table == "u")),
        "events lost on UNWATCH: {items:?}"
    );

    // The session keeps working, with no stray frames.
    let pong = watcher.expect_ok("PING").unwrap();
    assert_eq!(pong.message, "pong");
    // A second UNWATCH is a refusal, not a wedge.
    assert!(!watcher.request("UNWATCH").unwrap().ok);
    watcher.quit().unwrap();
    writer.quit().unwrap();
    server.shutdown().unwrap();
}

#[test]
fn watch_verbs_are_counted_in_metrics() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.watch(None).unwrap();
    let (_, _) = c.unwatch().unwrap();
    let text = c.metrics().unwrap();
    let samples = sqlnf_serve::parse_exposition(&text).expect("exposition parses");
    for verb in ["watch", "unwatch"] {
        assert!(
            samples.iter().any(|s| {
                s.name == "sqlnf_span_count"
                    && s.label("name") == Some(&format!("serve.verb.{verb}"))
            }),
            "no span sample for {verb}"
        );
    }
    c.quit().unwrap();
    server.shutdown().unwrap();
}
