//! Vendored stand-in for the subset of the `criterion` 0.5 API used by
//! this workspace: [`Criterion`], [`BenchmarkId`], `benchmark_group`
//! with `sample_size`/`bench_function`/`bench_with_input`/`finish`,
//! `Bencher::iter`, and the [`criterion_group!`]/[`criterion_main!`]
//! macros.
//!
//! The build environment has no access to crates.io. This shim keeps
//! `cargo bench` runnable: each benchmark is timed with
//! `std::time::Instant` over `sample_size` samples after a short
//! auto-calibrated warm-up, and median/min/max per-iteration times are
//! printed in a criterion-like one-line format. No statistical
//! analysis, plotting, or baseline comparison is performed.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group, as in
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A benchmark id `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Times closures, as in `criterion::Bencher`.
pub struct Bencher {
    /// Measured per-sample wall times, one entry per sample.
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly and records per-sample times.
    ///
    /// Warm-up doubles the iteration count until one batch takes at
    /// least ~5 ms (capped), then `sample_size` batches of that size
    /// are timed.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut iters_per_sample: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 2;
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample as u32);
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// A named group of related benchmarks, as returned by
/// [`Criterion::benchmark_group`].
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let mut sorted = bencher.samples.clone();
        sorted.sort();
        let (lo, mid, hi) = match sorted.len() {
            0 => (Duration::ZERO, Duration::ZERO, Duration::ZERO),
            n => (sorted[0], sorted[n / 2], sorted[n - 1]),
        };
        println!(
            "{}/{:<40} time: [{} {} {}]",
            self.name,
            id,
            fmt_duration(lo),
            fmt_duration(mid),
            fmt_duration(hi),
        );
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        self.run(&id.to_string(), f);
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.run(&id.name.clone(), |b| f(b, input));
    }

    /// Ends the group (printing is per-benchmark, so this is a no-op).
    pub fn finish(self) {}
}

/// The benchmark driver, as in `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Additional builder knobs are accepted and ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 20,
            _criterion: self,
        }
    }
}

/// Declares a group of benchmark functions, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($fn:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($fn(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, as in criterion. Harness arguments
/// (`--bench`, filters) are accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export for code written against `criterion::black_box`.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_prints() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let mut runs = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3u32, |b, &k| {
            b.iter(|| k * 2)
        });
        group.finish();
        assert!(runs > 5, "routine should run warm-up plus samples");
    }

    #[test]
    fn id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("p_linear", 64).to_string(), "p_linear/64");
    }
}
