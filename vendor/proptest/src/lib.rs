//! Vendored stand-in for the subset of the `proptest` 1.x API used by
//! this workspace: the [`proptest!`] macro, [`Strategy`] with
//! `prop_map`, [`prop_oneof!`], [`Just`], integer-range and string
//! strategies, [`collection::vec`], and the `prop_assert*`/
//! [`prop_assume!`] macros.
//!
//! The build environment has no access to crates.io. This shim keeps
//! the workspace's property suites runnable: cases are generated from a
//! deterministic per-test RNG, failures panic with the standard assert
//! message (no shrinking), and `prop_assume!` discards the case. The
//! `*.proptest-regressions` files of the real library are ignored.

#![warn(missing_docs)]

use std::rc::Rc;

/// Deterministic test RNG (xoshiro256++, seeded from the test name so
/// every test explores a stable but distinct stream).
pub mod test_runner {
    /// Case generator state.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Creates a generator seeded from an arbitrary string (the
        /// test's name), giving a stable stream per test.
        pub fn deterministic(name: &str) -> TestRng {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *slot = z ^ (z >> 31);
            }
            TestRng { s }
        }

        /// The next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform value below `bound` (> 0).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let zone = u64::MAX - (u64::MAX % bound);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % bound;
                }
            }
        }
    }

    /// Outcome of one generated case.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum CaseResult {
        /// The case ran to completion.
        Pass,
        /// `prop_assume!` rejected the inputs; draw a fresh case.
        Discard,
    }
}

use test_runner::TestRng;

/// Runner configuration, as in `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Smaller than upstream's 256: these suites run in CI on every
        // push and each case is itself often exhaustive over subsets.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`, as in proptest's `prop_map`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Chains a dependent strategy, as in proptest's `prop_flat_map`:
    /// `f` builds the second-stage strategy from the first-stage value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `&str` patterns act as string strategies. The real library compiles
/// the pattern as a regex; this shim only distinguishes "arbitrary
/// string" patterns (used by the parser-robustness fuzz suites) and
/// generates byte soup with a bias toward ASCII punctuation, digits,
/// letters, quotes and the odd multi-byte character.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        const POOL: &[char] = &[
            'a', 'b', 'z', 'A', 'Z', '0', '1', '9', ' ', '\t', '\n', '\r', '(', ')', ',', ';',
            '\'', '"', '-', '>', '_', '.', '*', '\\', '/', '=', '<', 'é', 'λ', '⊥', '😀', '\0',
        ];
        let len = rng.below(64) as usize;
        (0..len)
            .map(|_| {
                if rng.below(4) == 0 {
                    // Any scalar value from the low planes.
                    char::from_u32(rng.below(0xD800) as u32).unwrap_or('ő')
                } else {
                    POOL[rng.below(POOL.len() as u64) as usize]
                }
            })
            .collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0.0)
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
    (S0.0, S1.1, S2.2, S3.3, S4.4)
}

/// A type-erased, cheaply clonable strategy (the representation behind
/// [`prop_oneof!`]).
pub struct BoxedGen<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedGen<T> {
    fn clone(&self) -> Self {
        BoxedGen {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T> std::fmt::Debug for BoxedGen<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedGen")
    }
}

impl<T> Strategy for BoxedGen<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Erases a strategy into a [`BoxedGen`].
pub fn into_gen<S>(strategy: S) -> BoxedGen<S::Value>
where
    S: Strategy + 'static,
{
    BoxedGen {
        gen: Rc::new(move |rng| strategy.generate(rng)),
    }
}

/// Weighted union of strategies, as produced by [`prop_oneof!`].
#[derive(Debug, Clone)]
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedGen<T>)>,
    total: u64,
}

impl<T> OneOf<T> {
    /// Builds a union; weights must sum to a positive value.
    pub fn new(arms: Vec<(u32, BoxedGen<T>)>) -> OneOf<T> {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        OneOf { arms, total }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights covered above")
    }
}

/// Collection strategies, as in `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Admissible size arguments for [`vec`]: an exact length, or a
    /// (half-open or inclusive) length range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports, as in `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Defines property tests. See the crate docs: cases are generated
/// deterministically, assertion failures panic without shrinking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        // Call sites carry `#[test]` themselves (upstream convention),
        // so the expansion only forwards the attributes.
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut passed: u32 = 0;
            let mut discarded: u32 = 0;
            while passed < config.cases {
                assert!(
                    discarded < config.cases.saturating_mul(64).max(1024),
                    "too many prop_assume! discards ({discarded}) in {}",
                    stringify!($name),
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                #[allow(clippy::redundant_closure_call)]
                let outcome = (|| -> $crate::test_runner::CaseResult {
                    $body
                    #[allow(unreachable_code)]
                    $crate::test_runner::CaseResult::Pass
                })();
                match outcome {
                    $crate::test_runner::CaseResult::Pass => passed += 1,
                    $crate::test_runner::CaseResult::Discard => discarded += 1,
                }
            }
        }
    )*};
}

/// Weighted (or unweighted) union of strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(($weight as u32, $crate::into_gen($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $((1u32, $crate::into_gen($strategy))),+
        ])
    };
}

/// Asserts inside a property test (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Discards the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return $crate::test_runner::CaseResult::Discard;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn oneof_respects_weights_roughly() {
        let s = prop_oneof![9 => 0..1i32, 1 => 1..2i32];
        let mut rng = crate::test_runner::TestRng::deterministic("weights");
        let ones = (0..10_000)
            .filter(|_| crate::Strategy::generate(&s, &mut rng) == 1)
            .count();
        assert!((500..1_500).contains(&ones), "{ones}");
    }

    #[test]
    fn vec_sizes() {
        let s = crate::collection::vec(0..10u8, 3);
        let mut rng = crate::test_runner::TestRng::deterministic("sizes");
        assert_eq!(crate::Strategy::generate(&s, &mut rng).len(), 3);
        let r = crate::collection::vec(0..10u8, 1..5);
        for _ in 0..100 {
            let v = crate::Strategy::generate(&r, &mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro generates, assumes and asserts.
        #[test]
        fn macro_end_to_end(x in 0..100i64, v in crate::collection::vec(0..3u8, 0..=4)) {
            prop_assume!(x != 13);
            prop_assert!((0..100).contains(&x));
            prop_assert_eq!(v.len(), v.iter().filter(|&&b| b < 3).count());
            prop_assert_ne!(x, 13);
        }

        /// Tuple + map + Just compose.
        #[test]
        fn combinators(pair in (0..5u32, Just(7u32)).prop_map(|(a, b)| a + b)) {
            prop_assert!((7..12).contains(&pair));
        }
    }
}
