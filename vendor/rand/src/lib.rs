//! Vendored stand-in for the subset of the `rand` 0.8 API used by this
//! workspace: [`rngs::StdRng`], [`SeedableRng`], [`Rng`] (`gen_range`,
//! `gen_bool`, `gen_ratio`) and [`seq::SliceRandom`] (`choose`,
//! `shuffle`).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the few dozen lines of PRNG machinery it actually needs.
//! The generator is xoshiro256++ seeded via SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but all workspace datasets
//! and property tests depend only on uniformity and determinism per
//! seed, never on the exact upstream stream.

#![warn(missing_docs)]

/// A seedable RNG, as in `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step, used for seeding.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Ranges that can be sampled uniformly, as in
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Uniform integer in `[0, bound)` by Lemire-style rejection (modulo
/// with a retry zone small enough not to matter for our workloads).
fn below(rng: &mut dyn RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection sampling on the top bits to avoid modulo bias.
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

/// Integer types uniform ranges can be sampled over. A single generic
/// [`SampleRange`] impl per range shape keeps type inference working
/// the way it does upstream (the literal in `gen_range(0..n)` unifies
/// with the use site instead of defaulting to `i32`).
pub trait UniformInt: Copy + PartialOrd {
    /// Widens losslessly for span arithmetic.
    fn to_i128(self) -> i128;
    /// Narrows a value known to be in range.
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn to_i128(self) -> i128 {
                self as i128
            }
            #[inline]
            fn from_i128(v: i128) -> $t {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: UniformInt> SampleRange<T> for core::ops::Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        T::from_i128(lo + below(rng, (hi - lo) as u64) as i128)
    }
}

impl<T: UniformInt> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        assert!(lo <= hi, "empty range in gen_range");
        let span = (hi - lo) as u64;
        if span == u64::MAX {
            return T::from_i128(rng.next_u64() as i128);
        }
        T::from_i128(lo + below(rng, span + 1) as i128)
    }
}

/// The user-facing RNG trait, as in `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value from the given range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        // 53 uniform mantissa bits.
        let v = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        v < p
    }

    /// `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0 && numerator <= denominator);
        below(self, denominator as u64) < numerator as u64
    }
}

impl<T: RngCore> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // Avoid the all-zero state (splitmix64 cannot produce four
            // zeros from one stream, but keep the guard explicit).
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, as in `rand::seq`.
pub mod seq {
    use super::{below, Rng};

    /// Random selection and shuffling on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// A uniformly random element, or `None` on an empty slice.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[below(rng, self.len() as u64) as usize])
            }
        }

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..100).all(|_| a.gen_range(0..100u32) == c.gen_range(0..100u32));
        assert!(!same, "different seeds should diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn bool_and_ratio_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
        let hits = (0..10_000).filter(|_| rng.gen_ratio(1, 10)).count();
        assert!((700..1_300).contains(&hits), "{hits}");
    }

    #[test]
    fn slice_helpers() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs = [1, 2, 3, 4, 5];
        for _ in 0..100 {
            assert!(xs.contains(xs.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut ys = [1, 2, 3, 4, 5, 6, 7, 8];
        ys.shuffle(&mut rng);
        let mut sorted = ys;
        sorted.sort();
        assert_eq!(sorted, [1, 2, 3, 4, 5, 6, 7, 8]);
    }
}
